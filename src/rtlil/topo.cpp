#include "rtlil/topo.hpp"

#include "util/log.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace smartly::rtlil {

void combinational_adjacent_cells(const NetlistIndex& index, const SigBit& bit,
                                  std::vector<Cell*>& out) {
  if (Cell* d = index.driver(bit); d && d->type() != CellType::Dff)
    out.push_back(d);
  for (Cell* r : index.readers(bit))
    if (r->type() != CellType::Dff)
      out.push_back(r);
}

NetlistIndex::NetlistIndex(const Module& module) : sigmap_(module) {
  for (const auto& w : module.wires()) {
    if (!w->port_output)
      continue;
    for (int i = 0; i < w->width(); ++i)
      output_port_bits_[sigmap_(SigBit(w.get(), i))] = true;
  }

  std::unordered_map<const Cell*, int> indegree;
  std::unordered_map<SigBit, std::vector<Cell*>> comb_readers;

  for (const auto& cptr : module.cells()) {
    Cell* c = cptr.get();
    indegree[c] = 0;
    const Port out = c->output_port();
    for (const SigBit& raw : c->port(out)) {
      const SigBit bit = sigmap_(raw);
      if (!bit.is_wire())
        continue; // output tied to a constant alias: nothing to index
      auto [it, inserted] = driver_.emplace(bit, c);
      if (!inserted)
        log_warn("multiple drivers for %s[%d] (cells %s, %s)", bit.wire->name().c_str(),
                 bit.offset, it->second->name().c_str(), c->name().c_str());
    }
  }

  for (const auto& cptr : module.cells()) {
    Cell* c = cptr.get();
    index_cell_reads(c);
    for (Port p : c->input_ports()) {
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = sigmap_(raw);
        if (!bit.is_wire())
          continue;
        // Combinational dependency edge driver(bit) -> c, except into Dff.D
        // (sequential boundary) and from Dff.Q (handled as source).
        if (c->type() == CellType::Dff)
          continue;
        auto it = driver_.find(bit);
        if (it != driver_.end() && it->second->type() != CellType::Dff) {
          comb_readers[bit].push_back(c);
          ++indegree[c];
        }
      }
    }
  }

  // Kahn's algorithm over combinational edges, FIFO order. Two properties
  // matter beyond validity:
  //   * deterministic content function — the queue is seeded in module cell
  //     order (indegree is keyed on cell pointers, whose iteration order
  //     varies with heap layout), so design clones number their AIG/CNF
  //     encodings identically; the fraig engine's solver_conflicts
  //     determinism and every cross-clone bench differential depend on it;
  //   * BFS layering — positions correlate with logic depth, so the fraig
  //     engine's minimum-position class representative is the shallowest
  //     member and merges collapse deep cones onto shallow ones.
  std::vector<Cell*> ready;
  for (const auto& cptr : module.cells())
    if (indegree[cptr.get()] == 0)
      ready.push_back(cptr.get());
  topo_.reserve(module.cells().size());
  for (size_t head = 0; head < ready.size();) {
    Cell* c = ready[head++];
    topo_.push_back(c);
    if (c->type() == CellType::Dff)
      continue;
    for (const SigBit& raw : c->port(c->output_port())) {
      const SigBit bit = sigmap_(raw);
      auto it = comb_readers.find(bit);
      if (it == comb_readers.end())
        continue;
      for (Cell* r : it->second)
        if (--indegree[r] == 0)
          ready.push_back(r);
      comb_readers.erase(it);
    }
  }
  if (topo_.size() != module.cells().size())
    throw std::logic_error("NetlistIndex: combinational cycle detected");
  topo_pos_.reserve(topo_.size());
  for (size_t i = 0; i < topo_.size(); ++i)
    topo_pos_.emplace(topo_[i], static_cast<int>(i));
}

Cell* NetlistIndex::driver(SigBit bit) const {
  auto it = driver_.find(sigmap_(bit));
  return it == driver_.end() ? nullptr : it->second;
}

const std::vector<Cell*>& NetlistIndex::readers(SigBit bit) const {
  auto it = readers_.find(sigmap_(bit));
  return it == readers_.end() ? empty_ : it->second;
}

int NetlistIndex::fanout(SigBit bit) const {
  const SigBit b = sigmap_(bit);
  auto it = readers_.find(b);
  int n = it == readers_.end() ? 0 : static_cast<int>(it->second.size());
  if (drives_output_port(b))
    ++n;
  return n;
}

bool NetlistIndex::drives_output_port(SigBit bit) const {
  return output_port_bits_.count(sigmap_(bit)) > 0;
}

void NetlistIndex::index_cell_reads(Cell* cell) {
  std::vector<SigBit>& reads = cell_reads_[cell];
  reads.clear();
  for (Port p : cell->input_ports())
    for (const SigBit& raw : cell->port(p)) {
      const SigBit bit = sigmap_(raw);
      if (!bit.is_wire())
        continue;
      readers_[bit].push_back(cell);
      reads.push_back(bit);
    }
}

void NetlistIndex::erase_cell_reads(Cell* cell) {
  auto it = cell_reads_.find(cell);
  if (it == cell_reads_.end())
    return;
  for (const SigBit& stored : it->second) {
    auto rit = readers_.find(sigmap_(stored)); // re-canonicalize: merges since
    if (rit == readers_.end())
      continue;
    auto& list = rit->second;
    auto pos = std::find(list.begin(), list.end(), cell);
    if (pos != list.end())
      list.erase(pos); // one occurrence per stored entry (multiset semantics)
    if (list.empty())
      readers_.erase(rit);
  }
  it->second.clear();
}

void NetlistIndex::remove_cell(Cell* cell) {
  erase_cell_reads(cell);
  cell_reads_.erase(cell);
  for (const SigBit& raw : cell->port(cell->output_port())) {
    const SigBit bit = sigmap_(raw);
    if (!bit.is_wire())
      continue;
    auto it = driver_.find(bit);
    if (it != driver_.end() && it->second == cell)
      driver_.erase(it);
  }
  topo_pos_.erase(cell);
}

void NetlistIndex::add_cell(Cell* cell, int topo_pos) {
  for (const SigBit& raw : cell->port(cell->output_port())) {
    const SigBit bit = sigmap_(raw);
    if (!bit.is_wire())
      continue;
    auto [it, inserted] = driver_.emplace(bit, cell);
    if (!inserted && it->second != cell)
      log_warn("add_cell: %s[%d] already driven by %s (adding %s)", bit.wire->name().c_str(),
               bit.offset, it->second->name().c_str(), cell->name().c_str());
  }
  index_cell_reads(cell);
  topo_pos_.emplace(cell, topo_pos);
  topo_.push_back(cell);
  topo_needs_sort_ = true;
}

void NetlistIndex::add_alias(const SigSpec& lhs, const SigSpec& rhs) {
  const int n = std::min(lhs.size(), rhs.size());
  for (int i = 0; i < n; ++i) {
    const SigBit a = sigmap_(lhs[i]);
    const SigBit b = sigmap_(rhs[i]);
    if (a == b)
      continue;
    sigmap_.add(lhs[i], rhs[i]);
    const SigBit rep = sigmap_(lhs[i]);
    for (const SigBit& old : {a, b}) {
      if (old == rep)
        continue;
      // Reader entries / driver entries only exist for wire keys; a class
      // whose representative became a constant sheds them, exactly as a
      // rebuild (which never indexes constant-canonical bits) would.
      // Take the old entries out by value before touching the rep's slots:
      // inserting readers_[rep] / driver_[rep] can rehash and invalidate any
      // iterator still pointing at the old keys.
      if (old.is_wire()) {
        if (auto rit = readers_.find(old); rit != readers_.end()) {
          std::vector<Cell*> moved = std::move(rit->second);
          readers_.erase(rit);
          if (rep.is_wire()) {
            auto& dst = readers_[rep];
            dst.insert(dst.end(), moved.begin(), moved.end());
          }
        }
        if (auto dit = driver_.find(old); dit != driver_.end()) {
          Cell* moved = dit->second;
          driver_.erase(dit);
          if (rep.is_wire()) {
            auto [pos, inserted] = driver_.emplace(rep, moved);
            if (!inserted && pos->second != moved)
              log_warn("alias merges two driven nets (cells %s, %s)",
                       pos->second->name().c_str(), moved->name().c_str());
          }
        }
      }
      if (auto oit = output_port_bits_.find(old); oit != output_port_bits_.end()) {
        output_port_bits_[rep] = true;
        output_port_bits_.erase(old);
      }
    }
  }
}

void NetlistIndex::refresh_cell_reads(Cell* cell) {
  erase_cell_reads(cell);
  index_cell_reads(cell);
}

void NetlistIndex::compact_topo() {
  if (topo_.size() == topo_pos_.size() && !topo_needs_sort_)
    return;
  topo_.erase(std::remove_if(topo_.begin(), topo_.end(),
                             [&](Cell* c) { return !topo_pos_.count(c); }),
              topo_.end());
  if (topo_needs_sort_) {
    // Added cells were appended out of place; restore position order. Ties
    // are possible — several added cells can take the same freed position,
    // and a rewrite plan's ops at one root position DO depend on each other
    // — and stable_sort keeps them in append order, which callers make
    // deterministic (journal order: intra-plan dependencies are appended in
    // program order).
    std::stable_sort(topo_.begin(), topo_.end(),
                     [&](const Cell* a, const Cell* b) { return topo_pos_.at(a) < topo_pos_.at(b); });
    topo_needs_sort_ = false;
  }
  // Renumber to the compacted sequence so positions are unique again and
  // every dependency edge is *strictly* increasing (the invariant a fresh
  // rebuild establishes and index_consistent checks). Tied added cells get
  // distinct positions in their (deterministic) append order; all previously
  // distinct positions keep their relative order.
  for (size_t i = 0; i < topo_.size(); ++i)
    topo_pos_[topo_[i]] = static_cast<int>(i);
}

bool index_consistent(const Module& module, const NetlistIndex& index) {
  NetlistIndex rebuilt(module); // throws on a cycle: a corrupted module fails loudly

  for (const auto& w : module.wires()) {
    for (int i = 0; i < w->width(); ++i) {
      const SigBit bit(w.get(), i);
      if (index.driver(bit) != rebuilt.driver(bit))
        return false;
      if (index.fanout(bit) != rebuilt.fanout(bit))
        return false;
      if (index.drives_output_port(bit) != rebuilt.drives_output_port(bit))
        return false;
      std::vector<Cell*> a = index.readers(bit);
      std::vector<Cell*> b = rebuilt.readers(bit);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b)
        return false;
    }
  }

  // Topo bookkeeping: every module cell exactly once, dependencies respected.
  // (Callers compare after journal application, so compact_topo has run.)
  if (index.topo_order().size() != module.cells().size())
    return false;
  std::unordered_set<const Cell*> seen;
  for (const Cell* c : index.topo_order())
    if (!seen.insert(c).second)
      return false;
  for (const auto& cptr : module.cells()) {
    Cell* c = cptr.get();
    if (!seen.count(c))
      return false;
    if (c->type() == CellType::Dff)
      continue;
    for (const Port p : c->input_ports()) {
      for (const SigBit& raw : c->port(p)) {
        Cell* d = index.driver(raw);
        if (d != nullptr && d->type() != CellType::Dff &&
            index.topo_position(d) >= index.topo_position(c))
          return false;
      }
    }
  }
  return true;
}

} // namespace smartly::rtlil
