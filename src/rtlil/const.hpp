// Four-state constants (0/1/x/z) — the value domain of the RTL IR.
//
// Mirrors Yosys's RTLIL::Const: a little-endian vector of State bits with
// conversions to/from integers and Verilog-style bit strings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smartly::rtlil {

/// One four-state logic value. S0/S1 are defined; Sx is unknown/don't-care;
/// Sz is high-impedance (treated as Sx by all combinational operators).
enum class State : uint8_t { S0 = 0, S1 = 1, Sx = 2, Sz = 3 };

inline bool state_is_def(State s) noexcept { return s == State::S0 || s == State::S1; }
inline char state_to_char(State s) noexcept {
  switch (s) {
  case State::S0: return '0';
  case State::S1: return '1';
  case State::Sx: return 'x';
  case State::Sz: return 'z';
  }
  return '?';
}
State state_from_char(char c);

/// A fixed-width four-state constant. Bit 0 is the LSB.
class Const {
public:
  Const() = default;
  explicit Const(State bit) : bits_(1, bit) {}
  Const(uint64_t value, int width);
  explicit Const(std::vector<State> bits) : bits_(std::move(bits)) {}

  /// Parse a bit string in MSB-first order, e.g. "1zz0" (as written in
  /// Verilog sized literals). Accepts 0/1/x/z.
  static Const from_string(const std::string& msb_first);

  int size() const noexcept { return static_cast<int>(bits_.size()); }
  bool empty() const noexcept { return bits_.empty(); }

  State operator[](int i) const { return bits_.at(static_cast<size_t>(i)); }
  State& operator[](int i) { return bits_.at(static_cast<size_t>(i)); }
  const std::vector<State>& bits() const noexcept { return bits_; }
  std::vector<State>& bits() noexcept { return bits_; }

  /// True iff every bit is 0 or 1.
  bool is_fully_def() const noexcept;

  /// Value as unsigned integer; x/z bits read as 0; truncates to 64 bits.
  uint64_t as_uint() const noexcept;
  /// Two's-complement signed read of the full width (<= 64 bits meaningful).
  int64_t as_int_signed() const noexcept;
  /// True iff any bit is S1 (Verilog truthiness; x/z ignored).
  bool as_bool() const noexcept;

  /// MSB-first printable form, e.g. "01xz".
  std::string to_string() const;

  Const extract(int offset, int length) const;

  /// Zero- or sign-extend (or truncate) to `width`.
  Const extended(int width, bool is_signed) const;

  bool operator==(const Const& other) const noexcept { return bits_ == other.bits_; }
  bool operator!=(const Const& other) const noexcept { return bits_ != other.bits_; }

private:
  std::vector<State> bits_;
};

} // namespace smartly::rtlil
