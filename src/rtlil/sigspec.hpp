// SigBit / SigSpec — signal references, the glue of the netlist IR.
//
// A SigBit is either one bit of a Wire or a constant State. A SigSpec is an
// ordered vector of SigBits (LSB first) and is what cell ports connect to.
#pragma once

#include "rtlil/const.hpp"
#include "util/hashing.hpp"

#include <cstdint>
#include <functional>
#include <vector>

namespace smartly::rtlil {

class Wire;

/// One bit of a signal: either (wire, offset) or a constant State.
struct SigBit {
  Wire* wire = nullptr; ///< nullptr means this bit is the constant `data`.
  int offset = 0;       ///< bit index within `wire` (valid iff wire != nullptr)
  State data = State::Sx;

  SigBit() = default;
  SigBit(State s) : data(s) {} // NOLINT(google-explicit-constructor): constants convert freely
  SigBit(Wire* w, int off) : wire(w), offset(off) {}

  bool is_wire() const noexcept { return wire != nullptr; }
  bool is_const() const noexcept { return wire == nullptr; }

  bool operator==(const SigBit& o) const noexcept {
    if (wire != o.wire)
      return false;
    return wire ? offset == o.offset : data == o.data;
  }
  bool operator!=(const SigBit& o) const noexcept { return !(*this == o); }
  bool operator<(const SigBit& o) const noexcept {
    if (wire != o.wire)
      return wire < o.wire;
    return wire ? offset < o.offset : data < o.data;
  }

  uint64_t hash() const noexcept {
    return hash_combine(reinterpret_cast<uintptr_t>(wire),
                        wire ? static_cast<uint64_t>(offset)
                             : 0xabcd0000u + static_cast<uint64_t>(data));
  }
};

/// An ordered, possibly mixed (wire bits + constants) signal vector.
class SigSpec {
public:
  SigSpec() = default;
  SigSpec(SigBit bit) : bits_(1, bit) {}       // NOLINT(google-explicit-constructor)
  SigSpec(State s) : bits_(1, SigBit(s)) {}    // NOLINT(google-explicit-constructor)
  SigSpec(const Const& c);                     // NOLINT(google-explicit-constructor)
  SigSpec(Wire* wire);                         // NOLINT(google-explicit-constructor)
  SigSpec(Wire* wire, int offset, int width);
  explicit SigSpec(std::vector<SigBit> bits) : bits_(std::move(bits)) {}

  int size() const noexcept { return static_cast<int>(bits_.size()); }
  bool empty() const noexcept { return bits_.empty(); }

  SigBit operator[](int i) const { return bits_.at(static_cast<size_t>(i)); }
  SigBit& operator[](int i) { return bits_.at(static_cast<size_t>(i)); }

  const std::vector<SigBit>& bits() const noexcept { return bits_; }

  void append(const SigSpec& other);
  void append(SigBit bit) { bits_.push_back(bit); }

  SigSpec extract(int offset, int length) const;

  /// Replace every occurrence of `pattern[i]` with `with[i]` (same sizes).
  void replace_bit(const SigBit& pattern, const SigBit& with);

  bool is_fully_const() const noexcept;
  bool is_fully_def() const noexcept;
  /// True iff all bits are from a single wire, in order, spanning it entirely.
  bool is_wire() const noexcept;

  /// Requires is_fully_const().
  Const as_const() const;
  SigBit as_bit() const { return bits_.at(0); }

  /// Zero/sign-extend (or truncate) to `width` bits.
  SigSpec extended(int width, bool is_signed) const;

  bool operator==(const SigSpec& o) const noexcept { return bits_ == o.bits_; }
  bool operator!=(const SigSpec& o) const noexcept { return bits_ != o.bits_; }

  uint64_t hash() const noexcept {
    uint64_t h = 0x5137;
    for (const SigBit& b : bits_)
      h = hash_combine(h, b.hash());
    return h;
  }

  auto begin() const noexcept { return bits_.begin(); }
  auto end() const noexcept { return bits_.end(); }

private:
  std::vector<SigBit> bits_;
};

/// Repeat a single bit `n` times (helper for building fill vectors).
SigSpec sig_repeat(SigBit bit, int n);

} // namespace smartly::rtlil

namespace std {
template <> struct hash<smartly::rtlil::SigBit> {
  size_t operator()(const smartly::rtlil::SigBit& b) const noexcept { return b.hash(); }
};
template <> struct hash<smartly::rtlil::SigSpec> {
  size_t operator()(const smartly::rtlil::SigSpec& s) const noexcept { return s.hash(); }
};
} // namespace std
