#include "rtlil/const.hpp"

#include <stdexcept>

namespace smartly::rtlil {

State state_from_char(char c) {
  switch (c) {
  case '0': return State::S0;
  case '1': return State::S1;
  case 'x': case 'X': return State::Sx;
  case 'z': case 'Z': case '?': return State::Sz;
  default: throw std::invalid_argument(std::string("invalid state char: ") + c);
  }
}

Const::Const(uint64_t value, int width) {
  if (width < 0)
    throw std::invalid_argument("Const width must be >= 0");
  bits_.reserve(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i)
    bits_.push_back(((value >> (i & 63)) & 1) && i < 64 ? State::S1 : State::S0);
}

Const Const::from_string(const std::string& msb_first) {
  std::vector<State> bits;
  bits.reserve(msb_first.size());
  for (auto it = msb_first.rbegin(); it != msb_first.rend(); ++it) {
    if (*it == '_')
      continue;
    bits.push_back(state_from_char(*it));
  }
  return Const(std::move(bits));
}

bool Const::is_fully_def() const noexcept {
  for (State s : bits_)
    if (!state_is_def(s))
      return false;
  return true;
}

uint64_t Const::as_uint() const noexcept {
  uint64_t v = 0;
  const int n = std::min(size(), 64);
  for (int i = 0; i < n; ++i)
    if (bits_[static_cast<size_t>(i)] == State::S1)
      v |= uint64_t(1) << i;
  return v;
}

int64_t Const::as_int_signed() const noexcept {
  uint64_t v = as_uint();
  const int n = size();
  if (n > 0 && n < 64 && bits_[static_cast<size_t>(n - 1)] == State::S1) {
    // Sign-extend.
    v |= ~uint64_t(0) << n;
  }
  return static_cast<int64_t>(v);
}

bool Const::as_bool() const noexcept {
  for (State s : bits_)
    if (s == State::S1)
      return true;
  return false;
}

std::string Const::to_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (auto it = bits_.rbegin(); it != bits_.rend(); ++it)
    s.push_back(state_to_char(*it));
  return s;
}

Const Const::extract(int offset, int length) const {
  std::vector<State> out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    const int j = offset + i;
    out.push_back(j >= 0 && j < size() ? bits_[static_cast<size_t>(j)] : State::Sx);
  }
  return Const(std::move(out));
}

Const Const::extended(int width, bool is_signed) const {
  std::vector<State> out;
  out.reserve(static_cast<size_t>(width));
  const State fill = (is_signed && !bits_.empty()) ? bits_.back() : State::S0;
  for (int i = 0; i < width; ++i)
    out.push_back(i < size() ? bits_[static_cast<size_t>(i)] : fill);
  return Const(std::move(out));
}

} // namespace smartly::rtlil
