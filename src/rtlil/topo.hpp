// Netlist indices: driver map, fanout counts, topological cell order.
#pragma once

#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"

#include <unordered_map>
#include <vector>

namespace smartly::rtlil {

class NetlistIndex;

/// Cells adjacent to a (canonical) bit in the undirected netlist graph: its
/// driver plus all its readers, sequential cells excluded (they cut the
/// combinational cone). This is the single adjacency relation shared by
/// sub-graph extraction (core/subgraph.cpp) and region partitioning
/// (opt/region_partition.cpp) — the parallel sweep's race-freedom argument
/// requires region closures to over-approximate every extraction ball, which
/// holds only while both sides use this exact definition.
void combinational_adjacent_cells(const NetlistIndex& index, const SigBit& bit,
                                  std::vector<Cell*>& out);

/// True when an incrementally maintained index still equals a from-scratch
/// rebuild of `module`: per-bit driver / reader multiset / fanout /
/// output-port agreement plus a complete, dependency-respecting topo order.
/// The robustness machinery runs this after budget halts and injected faults
/// (engines' check_index option, tests/test_faults.cpp). O(module) plus a
/// full rebuild — debug/test cost, not hot-path cost.
bool index_consistent(const Module& module, const NetlistIndex& index);

/// Snapshot of who drives / reads each canonical SigBit.
///
/// Built once from a module, then either discarded after the pass iteration
/// (the historical usage) or kept alive and *updated in place* from the
/// sweep's structural edits via the incremental-maintenance API below — the
/// muxtree sweep engines apply their journals through it so the index is
/// never rebuilt from scratch between iterations.
///
/// Concurrency: all query methods are const and, provided `sigmap().flatten()`
/// has run since the last mutation, safe to call from many threads at once.
/// The maintenance methods are single-threaded (barrier-phase only).
class NetlistIndex {
public:
  explicit NetlistIndex(const Module& module);

  const SigMap& sigmap() const noexcept { return sigmap_; }

  /// Cell whose output drives this (canonical) bit, or nullptr for primary
  /// inputs / constants / dff-driven bits when `through_dff` was false.
  Cell* driver(SigBit bit) const;

  /// All cells reading this (canonical) bit. One entry per (cell, port, bit
  /// position) that reads the net, so a cell appears as many times as it
  /// reads the bit.
  const std::vector<Cell*>& readers(SigBit bit) const;

  /// Number of reader cells plus 1 if the bit reaches a module output port.
  int fanout(SigBit bit) const;

  bool drives_output_port(SigBit bit) const;

  /// Cells in topological order (combinational edges only; Dff cells are
  /// sources for their Q and sinks for their D). Throws if a combinational
  /// cycle exists. After incremental removals the order is compacted by
  /// compact_topo(); surviving cells keep their original relative order.
  const std::vector<Cell*>& topo_order() const noexcept { return topo_; }

  /// Position of a cell within topo_order(), or -1 if unknown. Lets callers
  /// sort small cell subsets into evaluation order without a module rescan.
  /// Positions are stable (never renumbered) across incremental updates, so
  /// only their relative order is meaningful after a removal.
  int topo_position(const Cell* cell) const {
    auto it = topo_pos_.find(cell);
    return it == topo_pos_.end() ? -1 : it->second;
  }

  /// One past the largest stored topo position. Directly after a rebuild or
  /// a compact_topo() the positions are exactly [0, bound), so this is the
  /// size for dense per-cell side tables indexed by topo_position — the
  /// rewrite engine's atomic claim words (rewrite/reservation.hpp) are sized
  /// this way at every round barrier. Between maintenance calls the bound
  /// stays valid for cells that existed at the barrier (removals leave gaps,
  /// they never grow positions); cells added mid-round report -1 until the
  /// journal is applied and must be tracked by the caller's own overlay.
  size_t topo_position_bound() const noexcept { return topo_.size(); }

  // --- incremental maintenance (sweep-barrier journal application) ---------
  //
  // The muxtree walkers only ever *shrink* the netlist: input ports lose
  // bits, cells disappear, and removed cells' outputs get aliased onto one of
  // their data inputs. Applied in the order remove_cell* -> add_alias* ->
  // refresh_cell_reads* -> compact_topo(), these primitives leave the index
  // equal (as driver/reader/output-port *multisets* per canonical net, and as
  // a valid topological order) to a from-scratch rebuild of the edited
  // module. Aliasing never creates a dependency that contradicts the stored
  // topo positions: a connect's lhs is the output of a removed cell that
  // already sat between the rhs's driver and the lhs's readers.

  /// Erase a cell that is being removed from the module: its driver entries,
  /// its reader entries, and its topo bookkeeping. Call *before* add_alias
  /// for the sweep's connects (keys are canonicalized with the current map).
  void remove_cell(Cell* cell);

  /// Register a cell added to the module mid-maintenance (the fraig engine
  /// inserts inverters for complement-pair merges). `topo_pos` slots the cell
  /// into the stored order — callers pass a freed position (typically the one
  /// a just-removed cell held) that sits after the new cell's fanin drivers
  /// and before its readers. topo_order() reflects the insertion only after
  /// the next compact_topo().
  void add_cell(Cell* cell, int topo_pos);

  /// Record a module-level connect: merges the canonical classes bit-by-bit
  /// and migrates reader lists, driver entries, and output-port flags onto
  /// the surviving representative. Must mirror Module::connect calls 1:1 and
  /// in the same order so the union-find state matches a rebuild.
  void add_alias(const SigSpec& lhs, const SigSpec& rhs);

  /// Re-derive the reader entries of a cell whose input ports were rewritten
  /// in place during the sweep. Call after add_alias so the new entries are
  /// keyed under the post-connect canonical bits, exactly like a rebuild.
  void refresh_cell_reads(Cell* cell);

  /// Drop removed cells from topo_order() and slot added cells into position
  /// order. Positions of survivors keep their old values (gaps are fine: only
  /// relative order is meaningful).
  void compact_topo();

private:
  void index_cell_reads(Cell* cell);
  void erase_cell_reads(Cell* cell);

  SigMap sigmap_;
  std::unordered_map<SigBit, Cell*> driver_;
  std::unordered_map<SigBit, std::vector<Cell*>> readers_;
  std::unordered_map<SigBit, bool> output_port_bits_;
  /// Canonical-at-insertion read bits per cell, one entry per (port, bit
  /// position) — the exact multiset of reader entries to retract when the
  /// cell mutates or disappears. Keys are re-canonicalized at erase time so
  /// alias merges in between are harmless.
  std::unordered_map<const Cell*, std::vector<SigBit>> cell_reads_;
  std::vector<Cell*> topo_;
  std::unordered_map<const Cell*, int> topo_pos_;
  bool topo_needs_sort_ = false; ///< an add_cell broke topo_'s position order
  std::vector<Cell*> empty_;
};

} // namespace smartly::rtlil
