// Netlist indices: driver map, fanout counts, topological cell order.
#pragma once

#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"

#include <unordered_map>
#include <vector>

namespace smartly::rtlil {

/// Immutable snapshot of who drives / reads each canonical SigBit.
/// Build once per pass iteration; rebuild after structural mutation.
class NetlistIndex {
public:
  explicit NetlistIndex(const Module& module);

  const SigMap& sigmap() const noexcept { return sigmap_; }

  /// Cell whose output drives this (canonical) bit, or nullptr for primary
  /// inputs / constants / dff-driven bits when `through_dff` was false.
  Cell* driver(SigBit bit) const;

  /// All cells reading this (canonical) bit.
  const std::vector<Cell*>& readers(SigBit bit) const;

  /// Number of reader cells plus 1 if the bit reaches a module output port.
  int fanout(SigBit bit) const;

  bool drives_output_port(SigBit bit) const;

  /// Cells in topological order (combinational edges only; Dff cells are
  /// sources for their Q and sinks for their D). Throws if a combinational
  /// cycle exists.
  const std::vector<Cell*>& topo_order() const noexcept { return topo_; }

  /// Position of a cell within topo_order(), or -1 if unknown. Lets callers
  /// sort small cell subsets into evaluation order without a module rescan.
  int topo_position(const Cell* cell) const {
    auto it = topo_pos_.find(cell);
    return it == topo_pos_.end() ? -1 : it->second;
  }

private:
  SigMap sigmap_;
  std::unordered_map<SigBit, Cell*> driver_;
  std::unordered_map<SigBit, std::vector<Cell*>> readers_;
  std::unordered_map<SigBit, bool> output_port_bits_;
  std::vector<Cell*> topo_;
  std::unordered_map<const Cell*, int> topo_pos_;
  std::vector<Cell*> empty_;
};

} // namespace smartly::rtlil
