// Debug dump and statistics helpers for designs.
#include "rtlil/design_stats.hpp"

#include "rtlil/sigmap.hpp"
#include "util/log.hpp"

#include <map>
#include <sstream>

namespace smartly::rtlil {

namespace {

std::string sig_to_string(const SigSpec& sig) {
  // Compact printer: groups consecutive bits of the same wire.
  std::ostringstream os;
  os << "{";
  int i = 0;
  bool first = true;
  while (i < sig.size()) {
    if (!first)
      os << ", ";
    first = false;
    const SigBit b = sig[i];
    if (b.is_const()) {
      // Collect a run of constants.
      std::string run;
      int j = i;
      while (j < sig.size() && sig[j].is_const())
        run.insert(run.begin(), state_to_char(sig[j++].data));
      os << run.size() << "'b" << run;
      i = j;
    } else {
      int j = i + 1;
      while (j < sig.size() && sig[j].is_wire() && sig[j].wire == b.wire &&
             sig[j].offset == b.offset + (j - i))
        ++j;
      os << b.wire->name();
      if (!(b.offset == 0 && j - i == b.wire->width())) {
        os << "[" << (b.offset + (j - i) - 1);
        if (j - i > 1)
          os << ":" << b.offset;
        os << "]";
      }
      i = j;
    }
  }
  os << "}";
  return os.str();
}

} // namespace

std::string dump_module(const Module& module) {
  std::ostringstream os;
  os << "module " << module.name() << "\n";
  for (const auto& w : module.wires()) {
    os << "  wire";
    if (w->port_input)
      os << " input";
    if (w->port_output)
      os << " output";
    os << " width " << w->width() << " " << w->name() << "\n";
  }
  for (const auto& c : module.cells()) {
    os << "  cell " << cell_type_name(c->type()) << " " << c->name() << "\n";
    for (int i = 0; i < kPortCount; ++i) {
      const Port p = static_cast<Port>(i);
      if (c->has_port(p))
        os << "    " << port_name(p) << " <- " << sig_to_string(c->port(p)) << "\n";
    }
  }
  for (const auto& [lhs, rhs] : module.connections())
    os << "  connect " << sig_to_string(lhs) << " = " << sig_to_string(rhs) << "\n";
  os << "endmodule\n";
  return os.str();
}

ModuleStats compute_stats(const Module& module) {
  ModuleStats st;
  st.wires = module.wires().size();
  for (const auto& c : module.cells()) {
    ++st.cells;
    switch (c->type()) {
    case CellType::Mux: ++st.mux_cells; break;
    case CellType::Pmux: ++st.pmux_cells; break;
    case CellType::Eq: ++st.eq_cells; break;
    case CellType::Dff: ++st.dff_cells; break;
    default: break;
    }
  }
  return st;
}

std::string stats_to_string(const ModuleStats& st) {
  return str_format("cells=%zu mux=%zu pmux=%zu eq=%zu dff=%zu wires=%zu", st.cells,
                    st.mux_cells, st.pmux_cells, st.eq_cells, st.dff_cells, st.wires);
}

} // namespace smartly::rtlil
