#include "rtlil/cell.hpp"

#include "util/log.hpp"

#include <stdexcept>

namespace smartly::rtlil {

const char* cell_type_name(CellType t) noexcept {
  switch (t) {
  case CellType::Not: return "$not";
  case CellType::Pos: return "$pos";
  case CellType::Neg: return "$neg";
  case CellType::ReduceAnd: return "$reduce_and";
  case CellType::ReduceOr: return "$reduce_or";
  case CellType::ReduceXor: return "$reduce_xor";
  case CellType::ReduceXnor: return "$reduce_xnor";
  case CellType::ReduceBool: return "$reduce_bool";
  case CellType::LogicNot: return "$logic_not";
  case CellType::And: return "$and";
  case CellType::Or: return "$or";
  case CellType::Xor: return "$xor";
  case CellType::Xnor: return "$xnor";
  case CellType::Shl: return "$shl";
  case CellType::Shr: return "$shr";
  case CellType::Sshr: return "$sshr";
  case CellType::Add: return "$add";
  case CellType::Sub: return "$sub";
  case CellType::Mul: return "$mul";
  case CellType::Lt: return "$lt";
  case CellType::Le: return "$le";
  case CellType::Eq: return "$eq";
  case CellType::Ne: return "$ne";
  case CellType::Ge: return "$ge";
  case CellType::Gt: return "$gt";
  case CellType::LogicAnd: return "$logic_and";
  case CellType::LogicOr: return "$logic_or";
  case CellType::Mux: return "$mux";
  case CellType::Pmux: return "$pmux";
  case CellType::Dff: return "$dff";
  }
  return "$unknown";
}

bool cell_is_unary(CellType t) noexcept {
  switch (t) {
  case CellType::Not:
  case CellType::Pos:
  case CellType::Neg:
  case CellType::ReduceAnd:
  case CellType::ReduceOr:
  case CellType::ReduceXor:
  case CellType::ReduceXnor:
  case CellType::ReduceBool:
  case CellType::LogicNot:
    return true;
  default:
    return false;
  }
}

bool cell_is_binary(CellType t) noexcept {
  switch (t) {
  case CellType::And:
  case CellType::Or:
  case CellType::Xor:
  case CellType::Xnor:
  case CellType::Shl:
  case CellType::Shr:
  case CellType::Sshr:
  case CellType::Add:
  case CellType::Sub:
  case CellType::Mul:
  case CellType::Lt:
  case CellType::Le:
  case CellType::Eq:
  case CellType::Ne:
  case CellType::Ge:
  case CellType::Gt:
  case CellType::LogicAnd:
  case CellType::LogicOr:
    return true;
  default:
    return false;
  }
}

bool cell_is_compare(CellType t) noexcept {
  switch (t) {
  case CellType::Lt:
  case CellType::Le:
  case CellType::Eq:
  case CellType::Ne:
  case CellType::Ge:
  case CellType::Gt:
    return true;
  default:
    return false;
  }
}

bool cell_is_sequential(CellType t) noexcept { return t == CellType::Dff; }

const char* port_name(Port p) noexcept {
  switch (p) {
  case Port::A: return "A";
  case Port::B: return "B";
  case Port::S: return "S";
  case Port::Y: return "Y";
  case Port::D: return "D";
  case Port::Q: return "Q";
  case Port::Clk: return "CLK";
  case Port::Count_: break;
  }
  return "?";
}

const SigSpec& Cell::port(Port p) const {
  if (!connected_[static_cast<size_t>(p)])
    throw std::logic_error(str_format("cell %s (%s): port %s not connected", name_.c_str(),
                                      cell_type_name(type_), port_name(p)));
  return ports_[static_cast<size_t>(p)];
}

void Cell::set_port(Port p, SigSpec sig) {
  ports_[static_cast<size_t>(p)] = std::move(sig);
  connected_[static_cast<size_t>(p)] = true;
}

std::vector<Port> Cell::input_ports() const {
  std::vector<Port> out;
  for (int i = 0; i < kPortCount; ++i) {
    const Port p = static_cast<Port>(i);
    if (p == Port::Y || p == Port::Q)
      continue;
    if (connected_[static_cast<size_t>(i)])
      out.push_back(p);
  }
  return out;
}

void Cell::infer_widths() {
  if (cell_is_unary(type_)) {
    params_.a_width = port(Port::A).size();
    params_.y_width = port(Port::Y).size();
  } else if (cell_is_binary(type_)) {
    params_.a_width = port(Port::A).size();
    params_.b_width = port(Port::B).size();
    params_.y_width = port(Port::Y).size();
  } else if (type_ == CellType::Mux) {
    params_.width = port(Port::Y).size();
  } else if (type_ == CellType::Pmux) {
    params_.width = port(Port::Y).size();
    params_.s_width = port(Port::S).size();
  } else if (type_ == CellType::Dff) {
    params_.width = port(Port::Q).size();
  }
}

void Cell::check() const {
  auto require = [&](bool ok, const char* what) {
    if (!ok)
      throw std::logic_error(str_format("cell %s (%s): %s", name_.c_str(),
                                        cell_type_name(type_), what));
  };
  if (cell_is_unary(type_)) {
    require(has_port(Port::A) && has_port(Port::Y), "needs A and Y");
    require(port(Port::A).size() == params_.a_width, "A width mismatch");
    require(port(Port::Y).size() == params_.y_width, "Y width mismatch");
  } else if (cell_is_binary(type_)) {
    require(has_port(Port::A) && has_port(Port::B) && has_port(Port::Y), "needs A, B, Y");
    require(port(Port::A).size() == params_.a_width, "A width mismatch");
    require(port(Port::B).size() == params_.b_width, "B width mismatch");
    require(port(Port::Y).size() == params_.y_width, "Y width mismatch");
    if (cell_is_compare(type_) || type_ == CellType::LogicAnd || type_ == CellType::LogicOr)
      require(params_.y_width >= 1, "compare Y must be >= 1 bit");
  } else if (type_ == CellType::Mux) {
    require(has_port(Port::A) && has_port(Port::B) && has_port(Port::S) && has_port(Port::Y),
            "needs A, B, S, Y");
    require(port(Port::A).size() == params_.width, "A width mismatch");
    require(port(Port::B).size() == params_.width, "B width mismatch");
    require(port(Port::S).size() == 1, "S must be 1 bit");
    require(port(Port::Y).size() == params_.width, "Y width mismatch");
  } else if (type_ == CellType::Pmux) {
    require(has_port(Port::A) && has_port(Port::B) && has_port(Port::S) && has_port(Port::Y),
            "needs A, B, S, Y");
    require(port(Port::A).size() == params_.width, "A width mismatch");
    require(port(Port::B).size() == params_.width * params_.s_width, "B width mismatch");
    require(port(Port::S).size() == params_.s_width, "S width mismatch");
    require(port(Port::Y).size() == params_.width, "Y width mismatch");
  } else if (type_ == CellType::Dff) {
    require(has_port(Port::D) && has_port(Port::Q) && has_port(Port::Clk), "needs D, Q, CLK");
    require(port(Port::D).size() == params_.width, "D width mismatch");
    require(port(Port::Q).size() == params_.width, "Q width mismatch");
    require(port(Port::Clk).size() == 1, "CLK must be 1 bit");
  }
}

uint64_t Cell::hash_structural() const noexcept {
  uint64_t h = hash_mix(static_cast<uint64_t>(type_));
  for (int i = 0; i < kPortCount; ++i) {
    const Port p = static_cast<Port>(i);
    if (p == Port::Y || p == Port::Q || !connected_[static_cast<size_t>(i)])
      continue;
    h = hash_combine(h, hash_combine(static_cast<uint64_t>(i), ports_[static_cast<size_t>(i)].hash()));
  }
  h = hash_combine(h, static_cast<uint64_t>(params_.a_signed) * 2 +
                          static_cast<uint64_t>(params_.b_signed));
  h = hash_combine(h, static_cast<uint64_t>(params_.y_width));
  return h;
}

} // namespace smartly::rtlil
