// Wire / Module / Design — netlist containers.
#pragma once

#include "rtlil/cell.hpp"
#include "rtlil/sigspec.hpp"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace smartly::rtlil {

class Module;
class Design;

/// A named bundle of bits. Ports are wires flagged input/output.
class Wire {
public:
  Wire(Module* module, std::string name, int width)
      : module_(module), name_(std::move(name)), width_(width) {}

  Module* module() const noexcept { return module_; }
  const std::string& name() const noexcept { return name_; }
  int width() const noexcept { return width_; }

  bool port_input = false;
  bool port_output = false;
  /// 1-based creation order among ports; 0 for non-ports.
  int port_id = 0;

private:
  Module* module_;
  std::string name_;
  int width_;
};

/// One hardware module: wires + cells + alias connections.
class Module {
public:
  explicit Module(Design* design, std::string name)
      : design_(design), name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  Design* design() const noexcept { return design_; }
  const std::string& name() const noexcept { return name_; }

  // --- wires -------------------------------------------------------------
  Wire* add_wire(const std::string& name, int width = 1);
  /// Fresh wire with a unique generated name based on `prefix`.
  Wire* new_wire(int width, const std::string& prefix = "$sig");
  Wire* wire(const std::string& name) const;
  bool has_wire(const std::string& name) const;
  const std::vector<std::unique_ptr<Wire>>& wires() const noexcept { return wires_; }
  /// Remove a wire nothing references anymore (caller's responsibility —
  /// SigBits holding the pointer would dangle). Used by the elaborator to
  /// retire $sig temporaries it retargeted onto assignment lvalues.
  void remove_wire(Wire* w);

  void set_port_input(Wire* w);
  void set_port_output(Wire* w);
  const std::vector<Wire*>& ports() const noexcept { return ports_; }

  // --- cells -------------------------------------------------------------
  Cell* add_cell(CellType type, const std::string& name = "");
  Cell* cell(const std::string& name) const;
  const std::vector<std::unique_ptr<Cell>>& cells() const noexcept { return cells_; }
  size_t cell_count() const noexcept { return cells_.size(); }
  void remove_cell(Cell* cell);
  void remove_cells(const std::vector<Cell*>& dead);

  // --- alias connections (lhs is driven by rhs) --------------------------
  void connect(const SigSpec& lhs, const SigSpec& rhs);
  const std::vector<std::pair<SigSpec, SigSpec>>& connections() const noexcept {
    return connections_;
  }
  std::vector<std::pair<SigSpec, SigSpec>>& connections() noexcept { return connections_; }

  // --- value-style builders (create cell + result wire) ------------------
  SigSpec add_unary(CellType type, const SigSpec& a, int y_width, bool a_signed = false);
  SigSpec add_binary(CellType type, const SigSpec& a, const SigSpec& b, int y_width,
                     bool a_signed = false, bool b_signed = false);
  SigSpec Not(const SigSpec& a) { return add_unary(CellType::Not, a, a.size()); }
  SigSpec Neg(const SigSpec& a, int w) { return add_unary(CellType::Neg, a, w); }
  SigSpec ReduceAnd(const SigSpec& a) { return add_unary(CellType::ReduceAnd, a, 1); }
  SigSpec ReduceOr(const SigSpec& a) { return add_unary(CellType::ReduceOr, a, 1); }
  SigSpec ReduceXor(const SigSpec& a) { return add_unary(CellType::ReduceXor, a, 1); }
  SigSpec LogicNot(const SigSpec& a) { return add_unary(CellType::LogicNot, a, 1); }
  SigSpec And(const SigSpec& a, const SigSpec& b) {
    return add_binary(CellType::And, a, b, std::max(a.size(), b.size()));
  }
  SigSpec Or(const SigSpec& a, const SigSpec& b) {
    return add_binary(CellType::Or, a, b, std::max(a.size(), b.size()));
  }
  SigSpec Xor(const SigSpec& a, const SigSpec& b) {
    return add_binary(CellType::Xor, a, b, std::max(a.size(), b.size()));
  }
  SigSpec Add(const SigSpec& a, const SigSpec& b, int w) {
    return add_binary(CellType::Add, a, b, w);
  }
  SigSpec Sub(const SigSpec& a, const SigSpec& b, int w) {
    return add_binary(CellType::Sub, a, b, w);
  }
  SigSpec Eq(const SigSpec& a, const SigSpec& b) { return add_binary(CellType::Eq, a, b, 1); }
  SigSpec Ne(const SigSpec& a, const SigSpec& b) { return add_binary(CellType::Ne, a, b, 1); }
  SigSpec Lt(const SigSpec& a, const SigSpec& b) { return add_binary(CellType::Lt, a, b, 1); }
  SigSpec LogicAnd(const SigSpec& a, const SigSpec& b) {
    return add_binary(CellType::LogicAnd, a, b, 1);
  }
  SigSpec LogicOr(const SigSpec& a, const SigSpec& b) {
    return add_binary(CellType::LogicOr, a, b, 1);
  }
  /// Y = S ? B : A (Yosys convention).
  SigSpec Mux(const SigSpec& a, const SigSpec& b, const SigSpec& s);
  /// Parallel mux: Y = B[i] where S[i] is the lowest set bit, else A.
  SigSpec Pmux(const SigSpec& a, const SigSpec& b, const SigSpec& s);
  SigSpec Dff(const SigSpec& d, const SigSpec& clk);

  /// Create Mux/Pmux/Dff driving an existing output signal.
  Cell* add_mux(const SigSpec& a, const SigSpec& b, const SigSpec& s, const SigSpec& y);
  Cell* add_pmux(const SigSpec& a, const SigSpec& b, const SigSpec& s, const SigSpec& y);
  Cell* add_dff(const SigSpec& d, const SigSpec& q, const SigSpec& clk);

  /// Run Cell::check on every cell and validate wire references.
  void check() const;

  /// Count cells of a given type.
  size_t count_cells(CellType t) const noexcept;

private:
  std::string unique_name(const std::string& prefix);

  friend void copy_module_into(Module& dst, const Module& src);
  friend void restore_module(Module& dst, const Module& src);

  Design* design_;
  std::string name_;
  std::vector<std::unique_ptr<Wire>> wires_;
  std::unordered_map<std::string, Wire*> wire_by_name_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::unordered_map<std::string, Cell*> cell_by_name_;
  std::vector<std::pair<SigSpec, SigSpec>> connections_;
  std::vector<Wire*> ports_;
  uint64_t name_counter_ = 0;
};

/// A set of modules (we only ever optimize one at a time, but the container
/// mirrors Yosys so frontends can emit hierarchies).
class Design {
public:
  Design() = default;
  Design(const Design&) = delete;
  Design& operator=(const Design&) = delete;

  Module* add_module(const std::string& name);
  Module* module(const std::string& name) const;
  const std::vector<std::unique_ptr<Module>>& modules() const noexcept { return modules_; }
  Module* top() const;

private:
  std::vector<std::unique_ptr<Module>> modules_;
  std::unordered_map<std::string, Module*> module_by_name_;
};

/// Deep-copy a module into a new Design (used to snapshot a design before
/// optimization for equivalence checking / ablation runs).
std::unique_ptr<Design> clone_design(const Design& src);

/// Deep-copy `src`'s contents into the *empty* module `dst`, including the
/// generated-name counter. Building block of clone_design/restore_module;
/// also used to snapshot a single module without cloning its whole Design.
void copy_module_into(Module& dst, const Module& src);

/// Replace `dst`'s entire contents (wires, cells, connections, ports, name
/// counter) with a deep copy of `src`. `dst` keeps its identity (Design
/// owner, name) but becomes byte-identical to `src` — including the
/// generated-name counter, so a retried stage regenerates the same names a
/// fresh run would. This is the rollback primitive of StageTransaction.
void restore_module(Module& dst, const Module& src);

} // namespace smartly::rtlil
