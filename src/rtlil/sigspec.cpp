#include "rtlil/sigspec.hpp"

#include "rtlil/module.hpp"

#include <stdexcept>

namespace smartly::rtlil {

SigSpec::SigSpec(const Const& c) {
  bits_.reserve(static_cast<size_t>(c.size()));
  for (int i = 0; i < c.size(); ++i)
    bits_.emplace_back(c[i]);
}

SigSpec::SigSpec(Wire* wire) {
  if (!wire)
    return;
  bits_.reserve(static_cast<size_t>(wire->width()));
  for (int i = 0; i < wire->width(); ++i)
    bits_.emplace_back(wire, i);
}

SigSpec::SigSpec(Wire* wire, int offset, int width) {
  if (!wire)
    throw std::invalid_argument("SigSpec: null wire");
  if (offset < 0 || width < 0 || offset + width > wire->width())
    throw std::out_of_range("SigSpec: slice out of wire bounds");
  bits_.reserve(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i)
    bits_.emplace_back(wire, offset + i);
}

void SigSpec::append(const SigSpec& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

SigSpec SigSpec::extract(int offset, int length) const {
  if (offset < 0 || length < 0 || offset + length > size())
    throw std::out_of_range("SigSpec::extract out of bounds");
  return SigSpec(std::vector<SigBit>(bits_.begin() + offset, bits_.begin() + offset + length));
}

void SigSpec::replace_bit(const SigBit& pattern, const SigBit& with) {
  for (SigBit& b : bits_)
    if (b == pattern)
      b = with;
}

bool SigSpec::is_fully_const() const noexcept {
  for (const SigBit& b : bits_)
    if (b.is_wire())
      return false;
  return true;
}

bool SigSpec::is_fully_def() const noexcept {
  for (const SigBit& b : bits_)
    if (b.is_wire() || !state_is_def(b.data))
      return false;
  return true;
}

bool SigSpec::is_wire() const noexcept {
  if (bits_.empty() || !bits_[0].is_wire() || bits_[0].offset != 0)
    return false;
  Wire* w = bits_[0].wire;
  if (w->width() != size())
    return false;
  for (int i = 0; i < size(); ++i)
    if (bits_[static_cast<size_t>(i)].wire != w || bits_[static_cast<size_t>(i)].offset != i)
      return false;
  return true;
}

Const SigSpec::as_const() const {
  std::vector<State> out;
  out.reserve(bits_.size());
  for (const SigBit& b : bits_) {
    if (b.is_wire())
      throw std::logic_error("SigSpec::as_const on non-constant signal");
    out.push_back(b.data);
  }
  return Const(std::move(out));
}

SigSpec SigSpec::extended(int width, bool is_signed) const {
  SigSpec out;
  const SigBit fill = (is_signed && !bits_.empty()) ? bits_.back() : SigBit(State::S0);
  for (int i = 0; i < width; ++i)
    out.append(i < size() ? bits_[static_cast<size_t>(i)] : fill);
  return out;
}

SigSpec sig_repeat(SigBit bit, int n) {
  SigSpec out;
  for (int i = 0; i < n; ++i)
    out.append(bit);
  return out;
}

} // namespace smartly::rtlil
