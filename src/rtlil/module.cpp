#include "rtlil/module.hpp"

#include "util/log.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace smartly::rtlil {

Wire* Module::add_wire(const std::string& name, int width) {
  if (width < 0)
    throw std::invalid_argument("wire width must be >= 0");
  if (wire_by_name_.count(name))
    throw std::invalid_argument(str_format("duplicate wire name: %s", name.c_str()));
  wires_.push_back(std::make_unique<Wire>(this, name, width));
  Wire* w = wires_.back().get();
  wire_by_name_.emplace(w->name(), w);
  return w;
}

Wire* Module::new_wire(int width, const std::string& prefix) {
  return add_wire(unique_name(prefix), width);
}

Wire* Module::wire(const std::string& name) const {
  auto it = wire_by_name_.find(name);
  return it == wire_by_name_.end() ? nullptr : it->second;
}

bool Module::has_wire(const std::string& name) const { return wire_by_name_.count(name) > 0; }

void Module::set_port_input(Wire* w) {
  if (!w->port_id) {
    ports_.push_back(w);
    w->port_id = static_cast<int>(ports_.size());
  }
  w->port_input = true;
}

void Module::set_port_output(Wire* w) {
  if (!w->port_id) {
    ports_.push_back(w);
    w->port_id = static_cast<int>(ports_.size());
  }
  w->port_output = true;
}

std::string Module::unique_name(const std::string& prefix) {
  for (;;) {
    std::string candidate = str_format("%s$%llu", prefix.c_str(),
                                       static_cast<unsigned long long>(name_counter_++));
    if (!wire_by_name_.count(candidate) && !cell_by_name_.count(candidate))
      return candidate;
  }
}

Cell* Module::add_cell(CellType type, const std::string& name) {
  std::string cname = name.empty() ? unique_name(cell_type_name(type)) : name;
  if (cell_by_name_.count(cname))
    throw std::invalid_argument(str_format("duplicate cell name: %s", cname.c_str()));
  cells_.push_back(std::make_unique<Cell>(this, cname, type));
  Cell* c = cells_.back().get();
  cell_by_name_.emplace(c->name(), c);
  return c;
}

Cell* Module::cell(const std::string& name) const {
  auto it = cell_by_name_.find(name);
  return it == cell_by_name_.end() ? nullptr : it->second;
}

void Module::remove_cell(Cell* cell) { remove_cells({cell}); }

void Module::remove_wire(Wire* w) {
  wire_by_name_.erase(w->name());
  // The common caller retires the just-created $sig temp, so search back-first.
  for (auto it = wires_.rbegin(); it != wires_.rend(); ++it) {
    if (it->get() == w) {
      wires_.erase(std::next(it).base());
      return;
    }
  }
}

void Module::remove_cells(const std::vector<Cell*>& dead) {
  if (dead.empty())
    return;
  std::unordered_set<const Cell*> kill(dead.begin(), dead.end());
  for (const Cell* c : dead)
    cell_by_name_.erase(c->name());
  cells_.erase(std::remove_if(cells_.begin(), cells_.end(),
                              [&](const std::unique_ptr<Cell>& c) { return kill.count(c.get()); }),
               cells_.end());
}

void Module::connect(const SigSpec& lhs, const SigSpec& rhs) {
  if (lhs.size() != rhs.size())
    throw std::invalid_argument(str_format("connect width mismatch: %d vs %d", lhs.size(),
                                           rhs.size()));
  connections_.emplace_back(lhs, rhs);
}

SigSpec Module::add_unary(CellType type, const SigSpec& a, int y_width, bool a_signed) {
  Wire* y = new_wire(y_width);
  Cell* c = add_cell(type);
  c->set_port(Port::A, a);
  c->set_port(Port::Y, SigSpec(y));
  c->params().a_signed = a_signed;
  c->infer_widths();
  return SigSpec(y);
}

SigSpec Module::add_binary(CellType type, const SigSpec& a, const SigSpec& b, int y_width,
                           bool a_signed, bool b_signed) {
  Wire* y = new_wire(y_width);
  Cell* c = add_cell(type);
  c->set_port(Port::A, a);
  c->set_port(Port::B, b);
  c->set_port(Port::Y, SigSpec(y));
  c->params().a_signed = a_signed;
  c->params().b_signed = b_signed;
  c->infer_widths();
  return SigSpec(y);
}

SigSpec Module::Mux(const SigSpec& a, const SigSpec& b, const SigSpec& s) {
  Wire* y = new_wire(a.size());
  add_mux(a, b, s, SigSpec(y));
  return SigSpec(y);
}

SigSpec Module::Pmux(const SigSpec& a, const SigSpec& b, const SigSpec& s) {
  Wire* y = new_wire(a.size());
  add_pmux(a, b, s, SigSpec(y));
  return SigSpec(y);
}

SigSpec Module::Dff(const SigSpec& d, const SigSpec& clk) {
  Wire* q = new_wire(d.size());
  add_dff(d, SigSpec(q), clk);
  return SigSpec(q);
}

Cell* Module::add_mux(const SigSpec& a, const SigSpec& b, const SigSpec& s, const SigSpec& y) {
  Cell* c = add_cell(CellType::Mux);
  c->set_port(Port::A, a);
  c->set_port(Port::B, b);
  c->set_port(Port::S, s);
  c->set_port(Port::Y, y);
  c->infer_widths();
  c->check();
  return c;
}

Cell* Module::add_pmux(const SigSpec& a, const SigSpec& b, const SigSpec& s, const SigSpec& y) {
  Cell* c = add_cell(CellType::Pmux);
  c->set_port(Port::A, a);
  c->set_port(Port::B, b);
  c->set_port(Port::S, s);
  c->set_port(Port::Y, y);
  c->infer_widths();
  c->check();
  return c;
}

Cell* Module::add_dff(const SigSpec& d, const SigSpec& q, const SigSpec& clk) {
  Cell* c = add_cell(CellType::Dff);
  c->set_port(Port::D, d);
  c->set_port(Port::Q, q);
  c->set_port(Port::Clk, clk);
  c->infer_widths();
  c->check();
  return c;
}

void Module::check() const {
  for (const auto& c : cells_) {
    c->check();
    for (int i = 0; i < kPortCount; ++i) {
      const Port p = static_cast<Port>(i);
      if (!c->has_port(p))
        continue;
      for (const SigBit& bit : c->port(p)) {
        if (!bit.is_wire())
          continue;
        if (bit.wire->module() != this)
          throw std::logic_error(str_format("cell %s references foreign wire %s",
                                            c->name().c_str(), bit.wire->name().c_str()));
        if (bit.offset < 0 || bit.offset >= bit.wire->width())
          throw std::logic_error(str_format("cell %s references out-of-range bit %s[%d]",
                                            c->name().c_str(), bit.wire->name().c_str(),
                                            bit.offset));
      }
    }
  }
}

size_t Module::count_cells(CellType t) const noexcept {
  size_t n = 0;
  for (const auto& c : cells_)
    if (c->type() == t)
      ++n;
  return n;
}

Module* Design::add_module(const std::string& name) {
  if (module_by_name_.count(name))
    throw std::invalid_argument(str_format("duplicate module name: %s", name.c_str()));
  modules_.push_back(std::make_unique<Module>(this, name));
  Module* m = modules_.back().get();
  module_by_name_.emplace(m->name(), m);
  return m;
}

Module* Design::module(const std::string& name) const {
  auto it = module_by_name_.find(name);
  return it == module_by_name_.end() ? nullptr : it->second;
}

Module* Design::top() const { return modules_.empty() ? nullptr : modules_.front().get(); }

/// Deep-copy `src`'s contents into the empty module `dst`, including the
/// generated-name counter so both modules name future wires/cells
/// identically. Shared by clone_design and restore_module.
void copy_module_into(Module& dst, const Module& src) {
  std::unordered_map<const Wire*, Wire*> wmap;
  for (const auto& sw : src.wires()) {
    Wire* dw = dst.add_wire(sw->name(), sw->width());
    if (sw->port_input)
      dst.set_port_input(dw);
    if (sw->port_output)
      dst.set_port_output(dw);
    wmap.emplace(sw.get(), dw);
  }
  auto map_sig = [&](const SigSpec& s) {
    SigSpec out;
    for (const SigBit& b : s)
      out.append(b.is_wire() ? SigBit(wmap.at(b.wire), b.offset) : b);
    return out;
  };
  for (const auto& sc : src.cells()) {
    Cell* dc = dst.add_cell(sc->type(), sc->name());
    dc->params() = sc->params();
    for (int i = 0; i < kPortCount; ++i) {
      const Port p = static_cast<Port>(i);
      if (sc->has_port(p))
        dc->set_port(p, map_sig(sc->port(p)));
    }
  }
  for (const auto& [lhs, rhs] : src.connections())
    dst.connect(map_sig(lhs), map_sig(rhs));
  dst.name_counter_ = src.name_counter_;
}

std::unique_ptr<Design> clone_design(const Design& src) {
  auto dst = std::make_unique<Design>();
  for (const auto& sm : src.modules())
    copy_module_into(*dst->add_module(sm->name()), *sm);
  return dst;
}

void restore_module(Module& dst, const Module& src) {
  dst.wires_.clear();
  dst.wire_by_name_.clear();
  dst.cells_.clear();
  dst.cell_by_name_.clear();
  dst.connections_.clear();
  dst.ports_.clear();
  dst.name_counter_ = 0;
  copy_module_into(dst, src);
}

} // namespace smartly::rtlil
