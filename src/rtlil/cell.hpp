// Cell — one word-level netlist operation (Yosys $-cell subset).
#pragma once

#include "rtlil/sigspec.hpp"

#include <array>
#include <string>
#include <utility>
#include <vector>

namespace smartly::rtlil {

class Module;

/// Word-level cell types. Semantics follow Yosys's internal cell library:
/// inputs are extended to max(A_WIDTH,B_WIDTH) (sign per *_SIGNED), the
/// operation is computed, and the result is extended/truncated to Y_WIDTH.
enum class CellType : uint8_t {
  // Unary: A -> Y
  Not,        ///< Y = ~A
  Pos,        ///< Y = +A  (width cast)
  Neg,        ///< Y = -A
  ReduceAnd,  ///< Y = &A   (1 bit)
  ReduceOr,   ///< Y = |A   (1 bit)
  ReduceXor,  ///< Y = ^A   (1 bit)
  ReduceXnor, ///< Y = ~^A  (1 bit)
  ReduceBool, ///< Y = |A   (1 bit; logic cast)
  LogicNot,   ///< Y = !A   (1 bit)
  // Binary bitwise / arithmetic: A, B -> Y
  And, Or, Xor, Xnor,
  Shl,  ///< Y = A << B   (B unsigned)
  Shr,  ///< Y = A >> B   (logical)
  Sshr, ///< Y = A >>> B  (arithmetic if A_SIGNED)
  Add, Sub, Mul,
  // Comparisons (1-bit Y)
  Lt, Le, Eq, Ne, Ge, Gt,
  // Logic (1-bit Y)
  LogicAnd, LogicOr,
  // Multiplexers
  Mux,  ///< Y = S ? B : A        (WIDTH-bit A/B/Y, 1-bit S)
  Pmux, ///< Y = S[i] ? B[i*W +: W] : A ; lowest set S bit wins; A if none
  // Sequential
  Dff,  ///< Q <= D @ posedge CLK (WIDTH-bit)
};

const char* cell_type_name(CellType t) noexcept;

bool cell_is_unary(CellType t) noexcept;
bool cell_is_binary(CellType t) noexcept;
bool cell_is_compare(CellType t) noexcept;
bool cell_is_sequential(CellType t) noexcept;

/// Port identifiers (fixed vocabulary — cheaper than string keys).
enum class Port : uint8_t { A = 0, B, S, Y, D, Q, Clk, Count_ };
constexpr int kPortCount = static_cast<int>(Port::Count_);

const char* port_name(Port p) noexcept;

/// Typed cell parameters (Yosys keeps these as a generic dict; the cell
/// library here is closed, so explicit fields are clearer and faster).
struct CellParams {
  int a_width = 0;
  int b_width = 0;
  int y_width = 0;
  int width = 0;   ///< Mux/Pmux/Dff data width
  int s_width = 0; ///< Pmux select width (number of cases)
  bool a_signed = false;
  bool b_signed = false;
};

class Cell {
public:
  Cell(Module* module, std::string name, CellType type)
      : module_(module), name_(std::move(name)), type_(type) {}

  Module* module() const noexcept { return module_; }
  const std::string& name() const noexcept { return name_; }
  CellType type() const noexcept { return type_; }
  void set_type(CellType t) noexcept { type_ = t; }

  CellParams& params() noexcept { return params_; }
  const CellParams& params() const noexcept { return params_; }

  bool has_port(Port p) const noexcept { return connected_[static_cast<size_t>(p)]; }
  const SigSpec& port(Port p) const;
  void set_port(Port p, SigSpec sig);

  /// Ports that the cell reads (everything except Y/Q).
  std::vector<Port> input_ports() const;
  /// Ports the cell drives (Y, or Q for Dff).
  Port output_port() const noexcept { return type_ == CellType::Dff ? Port::Q : Port::Y; }

  const SigSpec& output() const { return port(output_port()); }

  /// Fill in params_ widths from the current port connections.
  void infer_widths();

  /// Basic structural sanity (port widths consistent with params). Throws on
  /// violation; used by tests and after pass mutations.
  void check() const;

  uint64_t hash_structural() const noexcept;

private:
  Module* module_;
  std::string name_;
  CellType type_;
  CellParams params_;
  std::array<SigSpec, kPortCount> ports_;
  std::array<bool, kPortCount> connected_{};
};

} // namespace smartly::rtlil
