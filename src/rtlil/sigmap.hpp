// SigMap — canonicalization of alias connections (Yosys's SigMap).
//
// Module-level `connect(lhs, rhs)` entries make several SigBits name the same
// net. Passes must compare signals modulo these aliases; SigMap is a
// union-find over SigBits that returns a canonical representative
// (constants win over wires so `sigmap(x)` of a tied-off bit is the constant).
#pragma once

#include "rtlil/module.hpp"

#include <unordered_map>

namespace smartly::rtlil {

class SigMap {
public:
  SigMap() = default;
  explicit SigMap(const Module& module) {
    for (const auto& [lhs, rhs] : module.connections())
      add(lhs, rhs);
  }

  /// Merge the two signals bit-by-bit (lhs aliases rhs).
  void add(const SigSpec& lhs, const SigSpec& rhs) {
    const int n = std::min(lhs.size(), rhs.size());
    for (int i = 0; i < n; ++i)
      add(lhs[i], rhs[i]);
  }

  void add(SigBit a, SigBit b) {
    a = find(a);
    b = find(b);
    if (a == b)
      return;
    // Prefer a constant representative; otherwise keep `b` (the rhs/driver
    // side) canonical so chains collapse toward drivers.
    if (a.is_const())
      parent_[b] = a;
    else
      parent_[a] = b;
  }

  SigBit operator()(SigBit bit) const { return find(bit); }

  SigSpec operator()(const SigSpec& sig) const {
    SigSpec out;
    for (const SigBit& b : sig)
      out.append(find(b));
    return out;
  }

private:
  SigBit find(SigBit bit) const {
    auto it = parent_.find(bit);
    if (it == parent_.end())
      return bit;
    const SigBit root = find(it->second);
    parent_[bit] = root; // path compression (mutable cache)
    return root;
  }

  mutable std::unordered_map<SigBit, SigBit> parent_;
};

} // namespace smartly::rtlil
