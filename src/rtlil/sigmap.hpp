// SigMap — canonicalization of alias connections (Yosys's SigMap).
//
// Module-level `connect(lhs, rhs)` entries make several SigBits name the same
// net. Passes must compare signals modulo these aliases; SigMap is a
// union-find over SigBits that returns a canonical representative
// (constants win over wires so `sigmap(x)` of a tied-off bit is the constant).
//
// Concurrency contract: after flatten(), every stored parent points directly
// at its class representative, so find() takes the write-free fast path and
// the map may be read from many threads at once. add() (and the compressing
// slow path of find(), which only runs on chains created by add()) must stay
// single-threaded — the parallel sweep engine only mutates the sigmap at its
// serial journal-application barriers and calls flatten() before releasing
// worker threads back onto it.
#pragma once

#include "rtlil/module.hpp"

#include <unordered_map>

namespace smartly::rtlil {

class SigMap {
public:
  SigMap() = default;
  explicit SigMap(const Module& module) {
    for (const auto& [lhs, rhs] : module.connections())
      add(lhs, rhs);
  }

  /// Merge the two signals bit-by-bit (lhs aliases rhs).
  void add(const SigSpec& lhs, const SigSpec& rhs) {
    const int n = std::min(lhs.size(), rhs.size());
    for (int i = 0; i < n; ++i)
      add(lhs[i], rhs[i]);
  }

  void add(SigBit a, SigBit b) {
    a = find(a);
    b = find(b);
    if (a == b)
      return;
    // Prefer a constant representative; otherwise keep `b` (the rhs/driver
    // side) canonical so chains collapse toward drivers.
    if (a.is_const())
      parent_[b] = a;
    else
      parent_[a] = b;
  }

  SigBit operator()(SigBit bit) const { return find(bit); }

  SigSpec operator()(const SigSpec& sig) const {
    SigSpec out;
    for (const SigBit& b : sig)
      out.append(find(b));
    return out;
  }

  /// Point every stored parent directly at its representative. Afterwards
  /// find() never writes, making concurrent lookups race-free until the next
  /// add(). Values are only overwritten in place (no insertion), so the loop
  /// cannot invalidate its own iterator.
  void flatten() const {
    for (auto& [bit, par] : parent_) {
      (void)bit;
      SigBit root = par;
      for (auto it = parent_.find(root); it != parent_.end(); it = parent_.find(root))
        root = it->second;
      par = root;
    }
  }

private:
  SigBit find(SigBit bit) const {
    auto it = parent_.find(bit);
    if (it == parent_.end())
      return bit;
    SigBit root = it->second;
    auto next = parent_.find(root);
    if (next == parent_.end())
      return root; // already flat: no write (concurrent-read fast path)
    do {
      root = next->second;
      next = parent_.find(root);
    } while (next != parent_.end());
    // Compress the chain. Only reached when add() created a multi-hop chain
    // since the last flatten(), i.e. in single-threaded phases.
    SigBit cur = bit;
    while (true) {
      auto link = parent_.find(cur);
      if (link->second == root)
        break;
      cur = link->second;
      link->second = root;
    }
    return root;
  }

  mutable std::unordered_map<SigBit, SigBit> parent_;
};

} // namespace smartly::rtlil
