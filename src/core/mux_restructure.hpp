// Muxtree restructuring (paper §III, Algorithm 1) — smaRTLy's second engine.
//
//   for cell in {muxtree roots}:
//     if OnlyEq(cell) and SingleCtrl(cell):
//       Assignment <- ADD(cell)
//       RemovedEq  <- CountRemoved(cell)
//       if Check(Assignment, RemovedEq, height, width):
//         Rebuild(cell, Assignment)
//         RemoveUnusedCell()          # implemented in opt_clean
//
// Muxtrees generated from `case` statements are chains of $mux cells whose
// select signals are $eq(selector, constant) cells over one shared selector
// (Figs. 5-7). The pass re-expresses the tree as an ADD over the selector
// bits and rebuilds it as a (shared) binary decision tree of $mux cells whose
// selects are the raw selector bits, disconnecting the $eq cells entirely.
#pragma once

#include "core/add.hpp"
#include "rtlil/module.hpp"

namespace smartly::core {

struct MuxRestructureOptions {
  int max_sel_width = 12;     ///< cap on distinct selector bits (table = 2^h)
  bool greedy_order = true;   ///< paper heuristic; false = fixed order (ablation)
  bool skip_check = false;    ///< rebuild unconditionally (ablation; paper warns
                              ///< this "may even deteriorate the circuit")
  bool single_ctrl_wire = true; ///< Algorithm 1's SingleCtrl: all selector bits
                                ///< must come from one shared selector signal.
                                ///< false widens eligibility to mixed controls
                                ///< (ablation; overlaps the SAT engine's turf)
};

struct MuxRestructureStats {
  size_t trees_seen = 0;       ///< muxtree roots examined
  size_t trees_eligible = 0;   ///< passed OnlyEq ∧ SingleCtrl
  size_t trees_rebuilt = 0;
  size_t mux_removed = 0;      ///< old tree muxes deleted
  size_t mux_added = 0;        ///< rebuilt ADD muxes
  size_t eq_disconnected = 0;  ///< eq/control cells freed for opt_clean
};

MuxRestructureStats mux_restructure(rtlil::Module& module,
                                    const MuxRestructureOptions& options = {});

} // namespace smartly::core
