#include "core/mux_restructure.hpp"

#include "rtlil/topo.hpp"
#include "util/log.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace smartly::core {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Module;
using rtlil::NetlistIndex;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

namespace {

/// One conjunctive control pattern: ctrl is true iff sel_bits == consts.
struct EqPattern {
  std::vector<int> sel_index;  ///< indices into the tree's selector bit list
  std::vector<bool> value;
};

/// A tree mux's control = OR of patterns (multi-label case items).
struct CtrlFunc {
  std::vector<EqPattern> patterns;
  std::vector<Cell*> driver_cells; ///< eq / not / logic_or cells implementing it
};

struct TreeNode {
  Cell* cell = nullptr;
  int a_child = -1;     ///< index into tree nodes, or -1 when A is a leaf
  int b_child = -1;
  SigSpec a_leaf, b_leaf;
  CtrlFunc ctrl;
};

class Restructurer {
public:
  Restructurer(Module& module, const MuxRestructureOptions& options,
               MuxRestructureStats& stats)
      : module_(module), options_(options), stats_(stats), index_(module) {}

  bool run_once() {
    bool changed = false;
    // Identify tree-internal muxes: whole output read exactly once, by a mux,
    // through a data port, and the port slice equals the output exactly.
    std::unordered_set<Cell*> internal;
    for (const auto& cptr : module_.cells()) {
      Cell* c = cptr.get();
      if (c->type() != CellType::Mux)
        continue;
      if (unique_tree_parent(c))
        internal.insert(c);
    }
    // Snapshot roots: try_rebuild adds cells and must not invalidate this
    // iteration.
    std::vector<Cell*> roots;
    for (const auto& cptr : module_.cells()) {
      Cell* c = cptr.get();
      if (c->type() == CellType::Mux && !internal.count(c))
        roots.push_back(c);
    }
    for (Cell* c : roots) {
      if (consumed_.count(c))
        continue;
      ++stats_.trees_seen;
      if (try_rebuild(c))
        changed = true;
    }
    module_.remove_cells(std::vector<Cell*>(consumed_.begin(), consumed_.end()));
    consumed_.clear();
    return changed;
  }

private:
  /// Parent mux that reads this cell's entire Y as exactly one data port
  /// (A, or one B part of equal width), with no other readers.
  Cell* unique_tree_parent(Cell* c) {
    const SigSpec y = index_.sigmap()(c->port(Port::Y));
    Cell* parent = nullptr;
    for (const SigBit& bit : y) {
      if (!bit.is_wire() || index_.drives_output_port(bit))
        return nullptr;
      const auto& readers = index_.readers(bit);
      if (readers.size() != 1)
        return nullptr;
      if (parent && readers[0] != parent)
        return nullptr;
      parent = readers[0];
    }
    if (!parent || parent->type() != CellType::Mux)
      return nullptr;
    // The parent's A or B port must equal y exactly.
    if (index_.sigmap()(parent->port(Port::A)) == y)
      return parent;
    if (index_.sigmap()(parent->port(Port::B)) == y)
      return parent;
    return nullptr;
  }

  /// Try to match a control bit as a function of selector bits
  /// (eq-with-const / raw bit / inverted bit / OR of such). Returns false if
  /// the structure is anything else. Appends the selector bits it uses to
  /// `sel_bits_` (deduplicated via sel_index_).
  bool match_ctrl(const SigBit& raw, CtrlFunc& out, int depth = 0) {
    const SigBit bit = index_.sigmap()(raw);
    if (!bit.is_wire())
      return false; // constant control: opt_expr's job, not ours
    // Any bit without a recognizable eq/not/or structure is treated as a raw
    // selector bit (ctrl = (bit == 1)): this covers 1-bit `case` selectors,
    // register-driven controls, and keeps the table construction exact.
    auto raw_bit = [&]() {
      EqPattern p;
      p.sel_index.push_back(sel_index_of(bit));
      p.value.push_back(true);
      out.patterns.push_back(std::move(p));
      return true;
    };
    if (depth > 4)
      return raw_bit();
    Cell* d = index_.driver(bit);
    if (!d || d->type() == CellType::Dff)
      return raw_bit();
    switch (d->type()) {
    case CellType::Eq: {
      const SigSpec a = index_.sigmap()(d->port(Port::A));
      const SigSpec b = index_.sigmap()(d->port(Port::B));
      const SigSpec* var = &a;
      const SigSpec* cst = &b;
      if (a.is_fully_const())
        std::swap(var, cst);
      if (!cst->is_fully_const() || !cst->is_fully_def())
        return raw_bit();
      if (d->port(Port::Y).size() != 1)
        return raw_bit();
      EqPattern p;
      const int w = std::max(var->size(), cst->size());
      for (int i = 0; i < w; ++i) {
        const SigBit vb = i < var->size() ? (*var)[i] : SigBit(State::S0);
        const State cb = i < cst->size() ? (*cst)[i].data : State::S0;
        if (vb.is_const()) {
          if ((vb.data == State::S1) != (cb == State::S1))
            return raw_bit(); // degenerate constant-0 control: keep it opaque
          continue;
        }
        p.sel_index.push_back(sel_index_of(vb));
        p.value.push_back(cb == State::S1);
      }
      out.patterns.push_back(std::move(p));
      out.driver_cells.push_back(d);
      return true;
    }
    case CellType::Not:
    case CellType::LogicNot: {
      const SigSpec a = index_.sigmap()(d->port(Port::A));
      if (a.size() != 1 || !a[0].is_wire() || d->port(Port::Y).size() != 1)
        return raw_bit();
      // Inverted raw selector bit only (inverting an eq would need negated
      // patterns, which an OR of conjunctions cannot express).
      if (Cell* ad = index_.driver(a[0]); ad && ad->type() != CellType::Dff)
        return raw_bit();
      EqPattern p;
      p.sel_index.push_back(sel_index_of(a[0]));
      p.value.push_back(false);
      out.patterns.push_back(std::move(p));
      out.driver_cells.push_back(d);
      return true;
    }
    case CellType::LogicOr:
    case CellType::Or: {
      if (d->port(Port::Y).size() != 1 || d->port(Port::A).size() != 1 ||
          d->port(Port::B).size() != 1)
        return raw_bit();
      if (!match_ctrl(d->port(Port::A)[0], out, depth + 1))
        return false;
      if (!match_ctrl(d->port(Port::B)[0], out, depth + 1))
        return false;
      out.driver_cells.push_back(d);
      return true;
    }
    default:
      return raw_bit();
    }
  }

  int sel_index_of(const SigBit& bit) {
    auto it = sel_index_.find(bit);
    if (it != sel_index_.end())
      return it->second;
    const int idx = static_cast<int>(sel_bits_.size());
    sel_bits_.push_back(bit);
    sel_index_.emplace(bit, idx);
    return idx;
  }

  /// Gather the tree under `root`. Returns node indices (0 = root) or empty
  /// on ineligibility (OnlyEq / SingleCtrl / width constraints violated).
  std::vector<TreeNode> gather_tree(Cell* root) {
    sel_bits_.clear();
    sel_index_.clear();
    std::vector<TreeNode> nodes;
    std::vector<Cell*> queue{root};
    std::unordered_map<Cell*, int> id_of;
    id_of.emplace(root, 0);
    nodes.emplace_back();
    nodes[0].cell = root;

    for (size_t qi = 0; qi < queue.size(); ++qi) {
      Cell* c = queue[qi];
      const int id = id_of[c];
      if (!match_ctrl(c->port(Port::S)[0], nodes[static_cast<size_t>(id)].ctrl))
        return {};
      if (static_cast<int>(sel_bits_.size()) > options_.max_sel_width)
        return {};
      for (Port p : {Port::A, Port::B}) {
        const SigSpec sig = index_.sigmap()(c->port(p));
        Cell* child = data_port_child(c, sig);
        int child_id = -1;
        if (child) {
          auto [it, inserted] = id_of.emplace(child, static_cast<int>(nodes.size()));
          if (!inserted)
            return {}; // shared child: not a tree
          child_id = it->second;
          nodes.emplace_back();
          nodes.back().cell = child;
          queue.push_back(child);
        }
        auto& node = nodes[static_cast<size_t>(id)];
        if (p == Port::A) {
          node.a_child = child_id;
          if (child_id < 0)
            node.a_leaf = c->port(Port::A);
        } else {
          node.b_child = child_id;
          if (child_id < 0)
            node.b_leaf = c->port(Port::B);
        }
      }
    }
    return nodes;
  }

  /// Mux driving this entire data port exclusively (tree edge), or nullptr.
  Cell* data_port_child(Cell* reader, const SigSpec& sig) {
    if (sig.empty() || !sig[0].is_wire())
      return nullptr;
    Cell* d = index_.driver(sig[0]);
    if (!d || d->type() != CellType::Mux || consumed_.count(d))
      return nullptr;
    if (index_.sigmap()(d->port(Port::Y)) != sig)
      return nullptr;
    for (const SigBit& bit : sig) {
      if (index_.drives_output_port(bit))
        return nullptr;
      const auto& readers = index_.readers(bit);
      if (readers.size() != 1 || readers[0] != reader)
        return nullptr;
    }
    return d;
  }

  static bool pattern_matches(const EqPattern& p, uint64_t v) {
    for (size_t i = 0; i < p.sel_index.size(); ++i) {
      const bool bit = (v >> p.sel_index[i]) & 1;
      if (bit != p.value[i])
        return false;
    }
    return true;
  }

  static bool ctrl_value(const CtrlFunc& f, uint64_t v) {
    for (const EqPattern& p : f.patterns)
      if (pattern_matches(p, v))
        return true;
    return false;
  }

  /// Rough AIG AND-count of a control cell (for the Check() gain estimate).
  static size_t ctrl_cell_cost(const Cell* c) {
    switch (c->type()) {
    case CellType::Eq: {
      // xnor-with-const is free; the AND-reduction costs width-1.
      const int w = std::max(c->port(Port::A).size(), c->port(Port::B).size());
      return w > 1 ? static_cast<size_t>(w - 1) : 0;
    }
    case CellType::LogicOr:
    case CellType::Or:
      return 1;
    default:
      return 0; // inverters are free in an AIG
    }
  }

  bool try_rebuild(Cell* root) {
    const std::vector<TreeNode> tree = gather_tree(root);
    if (tree.size() < 2 || sel_bits_.empty())
      return false;
    // Algorithm 1's SingleCtrl condition: every control is a function of one
    // shared selector signal. Mixed-wire controls belong to the SAT engine.
    if (options_.single_ctrl_wire) {
      for (const SigBit& b : sel_bits_)
        if (b.wire != sel_bits_[0].wire)
          return false;
    }
    ++stats_.trees_eligible;

    const int h = static_cast<int>(sel_bits_.size());
    const int width = root->params().width;

    // --- terminal table over all selector values ------------------------
    std::vector<SigSpec> terminals;
    std::unordered_map<SigSpec, int> terminal_id;
    auto intern = [&](const SigSpec& s) {
      auto [it, inserted] = terminal_id.emplace(s, static_cast<int>(terminals.size()));
      if (inserted)
        terminals.push_back(s);
      return it->second;
    };

    std::vector<int> table(size_t(1) << h);
    for (uint64_t v = 0; v < table.size(); ++v) {
      int node = 0;
      for (;;) {
        const TreeNode& n = tree[static_cast<size_t>(node)];
        const bool take_b = ctrl_value(n.ctrl, v);
        const int child = take_b ? n.b_child : n.a_child;
        if (child < 0) {
          table[v] = intern(take_b ? n.b_leaf : n.a_leaf);
          break;
        }
        node = child;
      }
    }

    const AddResult add = options_.greedy_order
                              ? build_add(table, h)
                              : build_add_fixed_order(table, h);

    // --- CountRemoved: control cells whose fanout is only tree S ports ---
    std::unordered_set<Cell*> tree_cells;
    for (const TreeNode& n : tree)
      tree_cells.insert(n.cell);
    std::unordered_set<Cell*> ctrl_cells;
    for (const TreeNode& n : tree)
      for (Cell* c : n.ctrl.driver_cells)
        ctrl_cells.insert(c);
    size_t removed_eq_gain = 0;
    size_t removable_eq = 0;
    for (Cell* c : ctrl_cells) {
      bool only_tree = true;
      for (const SigBit& raw : c->port(Port::Y)) {
        const SigBit bit = index_.sigmap()(raw);
        if (!bit.is_wire() || index_.drives_output_port(bit)) {
          only_tree = false;
          break;
        }
        for (Cell* r : index_.readers(bit)) {
          // Readers must be tree muxes or other (also removable) ctrl cells.
          if (!tree_cells.count(r) && !ctrl_cells.count(r)) {
            only_tree = false;
            break;
          }
        }
        if (!only_tree)
          break;
      }
      if (only_tree) {
        removed_eq_gain += ctrl_cell_cost(c);
        ++removable_eq;
      }
    }

    // --- Check(): estimated AIG gain must be positive --------------------
    // A W-bit mux costs ~3W AND nodes after aigmap.
    const size_t old_cost = 3 * static_cast<size_t>(width) * tree.size();
    const size_t new_cost = 3 * static_cast<size_t>(width) * add.internal_nodes();
    const bool beneficial =
        old_cost + removed_eq_gain > new_cost && add.height() <= h;
    if (!options_.skip_check && !beneficial) {
      log_debug("restructure: skip tree at %s (old=%zu new=%zu eq=%zu)",
                root->name().c_str(), old_cost, new_cost, removed_eq_gain);
      return false;
    }

    // --- Rebuild ----------------------------------------------------------
    // Bottom-up over the ADD DAG; shared nodes become shared muxes.
    std::unordered_map<int, SigSpec> value_of;
    auto node_value = [&](auto&& self, int ref) -> SigSpec {
      if (add_is_terminal(ref))
        return terminals[static_cast<size_t>(add_terminal_id(ref))];
      auto it = value_of.find(ref);
      if (it != value_of.end())
        return it->second;
      const AddNode& n = add.nodes[static_cast<size_t>(ref)];
      const SigSpec lo = self(self, n.lo);
      const SigSpec hi = self(self, n.hi);
      const SigSpec y =
          module_.Mux(lo, hi, SigSpec(sel_bits_[static_cast<size_t>(n.var)]));
      ++stats_.mux_added;
      value_of.emplace(ref, y);
      return y;
    };
    const SigSpec result = node_value(node_value, add.root);
    module_.connect(root->port(Port::Y), result);

    for (const TreeNode& n : tree)
      consumed_.insert(n.cell);
    stats_.mux_removed += tree.size();
    stats_.eq_disconnected += removable_eq;
    ++stats_.trees_rebuilt;
    return true;
  }

  Module& module_;
  const MuxRestructureOptions& options_;
  MuxRestructureStats& stats_;
  NetlistIndex index_;
  std::unordered_set<Cell*> consumed_;
  std::vector<SigBit> sel_bits_;
  std::unordered_map<SigBit, int> sel_index_;
};

} // namespace

MuxRestructureStats mux_restructure(Module& module, const MuxRestructureOptions& options) {
  MuxRestructureStats stats;
  // One structural sweep is enough for chains; a second pass catches trees
  // exposed by the first (e.g. after shared-node rebuilds).
  for (int iter = 0; iter < 4; ++iter) {
    Restructurer r(module, options, stats);
    if (!r.run_once())
      break;
  }
  return stats;
}

} // namespace smartly::core
