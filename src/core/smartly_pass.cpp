#include "core/smartly_pass.hpp"

#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/opt_muxtree.hpp"
#include "opt/pipeline.hpp"

namespace smartly::core {

SmartlyStats smartly_pass(rtlil::Module& module, const SmartlyOptions& options) {
  SmartlyStats stats;

  // One guard for the whole pass: every engine charges the same counters, so
  // the budgets cap the run, not each stage. Engines already carrying a
  // caller-provided guard (options.sat.guard etc.) keep it; the pass-level
  // budgets only fill the slots left empty.
  util::ResourceGuard guard(options.budgets, options.cancel);
  util::ResourceGuard* gp =
      (options.budgets.any() || options.cancel != nullptr) ? &guard : nullptr;
  if (gp != nullptr)
    gp->set_growth_baseline(module.cells().size());

  SatRedundancyOptions sat_opts = options.sat;
  if (gp != nullptr && sat_opts.guard == nullptr)
    sat_opts.guard = gp;

  if (options.enable_rebuild) {
    stats.rebuild = mux_restructure(module, options.rebuild);
    // Rebuilding disconnects eq cells and can expose constants.
    opt::opt_expr(module);
    opt::opt_clean(module);
  }
  if (options.enable_sat) {
    stats.sat = sat_redundancy_parallel(module, sat_opts, options.threads,
                                        /*trace=*/nullptr, &stats.sweep);
    opt::opt_expr(module);
    opt::opt_clean(module);
  } else {
    // smaRTLy *replaces* opt_muxtree, and its SAT engine strictly subsumes
    // the baseline's syntactic traversal (stage 1 of the oracle). When the
    // SAT engine is disabled (Table III's "Rebuild" arm) the baseline
    // traversal must still run, or the comparison against Yosys would
    // penalize the Rebuild engine for work it never claimed to do.
    stats.sat.walker = opt::opt_muxtree(module);
    opt::opt_expr(module);
    opt::opt_clean(module);
  }
  if (options.enable_rewrite) {
    // The deep-optimization loop subsumes the plain fraig stage: fraig ->
    // rewrite pairs to convergence, closing fraig included.
    opt::DeepOptOptions deep;
    deep.fraig = options.fraig;
    deep.fraig.threads = options.threads;
    deep.rewrite = options.rewrite;
    deep.rewrite.threads = options.threads;
    if (gp != nullptr) {
      if (deep.fraig.guard == nullptr)
        deep.fraig.guard = gp;
      if (deep.rewrite.guard == nullptr)
        deep.rewrite.guard = gp;
    }
    const opt::DeepOptStats ds = opt::fraig_rewrite_loop(module, deep);
    stats.fraig = ds.fraig;
    stats.rewrite = ds.rewrite;
  } else if (options.enable_fraig) {
    sweep::FraigOptions fraig = options.fraig;
    fraig.threads = options.threads;
    if (gp != nullptr && fraig.guard == nullptr)
      fraig.guard = gp;
    stats.fraig = opt::fraig_stage(module, fraig);
  }

  if (gp != nullptr)
    stats.resource = gp->report();
  else if (options.sat.guard != nullptr)
    stats.resource = options.sat.guard->report();
  return stats;
}

SmartlyStats smartly_flow(rtlil::Module& module, const SmartlyOptions& options) {
  opt::coarse_opt(module);
  SmartlyStats stats = smartly_pass(module, options);
  opt::coarse_opt(module);
  return stats;
}

} // namespace smartly::core
