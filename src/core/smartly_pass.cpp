#include "core/smartly_pass.hpp"

#include "obs/trace.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/opt_muxtree.hpp"
#include "opt/pipeline.hpp"

#include <cstdio>

namespace smartly::core {

namespace {

/// One-line option summary recorded in repro bundles (free-form).
std::string summarize_options(const SmartlyOptions& o) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "threads=%d sat=%d rebuild=%d fraig=%d rewrite=%d paranoid=%d retries=%d",
                o.threads, o.enable_sat ? 1 : 0, o.enable_rebuild ? 1 : 0,
                o.enable_fraig ? 1 : 0, o.enable_rewrite ? 1 : 0,
                o.recovery.paranoid ? 1 : 0, o.recovery.max_retries);
  return buf;
}

} // namespace

SmartlyStats smartly_pass(rtlil::Module& module, const SmartlyOptions& options) {
  const obs::Span span("pipeline", "pass.smartly_pass", "cells",
                       static_cast<uint64_t>(module.cells().size()));
  SmartlyStats stats;

  // One guard for the whole pass: every engine charges the same counters, so
  // the budgets cap the run, not each stage. Engines already carrying a
  // caller-provided guard (options.sat.guard etc.) keep it; the pass-level
  // budgets only fill the slots left empty.
  // Recovery also needs a guard armed even without budgets: the engines
  // contain worker faults by tripping BudgetKind::Fault on it, which is how
  // the transaction driver observes them.
  util::ResourceGuard guard(options.budgets, options.cancel);
  util::ResourceGuard* gp = (options.budgets.any() || options.cancel != nullptr ||
                             options.recovery.enabled)
                                ? &guard
                                : nullptr;
  if (gp != nullptr)
    gp->set_growth_baseline(module.cells().size());

  // Shared recovery state: the quarantine set is sticky across every stage
  // of the pass, so a unit that faulted in one stage stays filtered for the
  // rest of the run (and is reported once in stats.recovery).
  opt::RecoveryContext rctx;
  rctx.options = options.recovery;
  rctx.engine_options = summarize_options(options);
  opt::RecoveryContext* rp = options.recovery.enabled ? &rctx : nullptr;

  SatRedundancyOptions sat_opts = options.sat;
  if (gp != nullptr && sat_opts.guard == nullptr)
    sat_opts.guard = gp;
  if (rp != nullptr && sat_opts.quarantine == nullptr)
    sat_opts.quarantine = &rctx.quarantine;

  // The guard the transaction driver must watch is the one the engines
  // charge: a caller-provided guard (options.sat.guard) wins over the
  // pass-local one — fault trips land on it, not on `guard`.
  util::ResourceGuard* stage_guard = sat_opts.guard;

  if (options.enable_rebuild) {
    const opt::StageOutcome out =
        opt::run_protected_stage(module, "rebuild", rp, stage_guard, [&](rtlil::Module& m, int) {
          stats.rebuild = mux_restructure(m, options.rebuild);
          // Rebuilding disconnects eq cells and can expose constants.
          opt::opt_expr(m);
          opt::opt_clean(m);
        });
    if (!out.committed)
      stats.rebuild = MuxRestructureStats{};
  }
  if (options.enable_sat) {
    const opt::StageOutcome out =
        opt::run_protected_stage(module, "sweep", rp, stage_guard, [&](rtlil::Module& m, int cap) {
          SatRedundancyOptions run = sat_opts;
          if (cap >= 0)
            run.guard = nullptr; // bisection probes never charge the run's budgets
          stats.sat = sat_redundancy_parallel(m, run, options.threads,
                                              /*trace=*/nullptr, &stats.sweep, cap);
          opt::opt_expr(m);
          opt::opt_clean(m);
        });
    if (!out.committed) {
      stats.sat = SatRedundancyStats{};
      stats.sweep = opt::ParallelSweepStats{};
    }
  } else {
    // smaRTLy *replaces* opt_muxtree, and its SAT engine strictly subsumes
    // the baseline's syntactic traversal (stage 1 of the oracle). When the
    // SAT engine is disabled (Table III's "Rebuild" arm) the baseline
    // traversal must still run, or the comparison against Yosys would
    // penalize the Rebuild engine for work it never claimed to do.
    const opt::StageOutcome out =
        opt::run_protected_stage(module, "muxtree", rp, stage_guard, [&](rtlil::Module& m, int) {
          stats.sat.walker = opt::opt_muxtree(m);
          opt::opt_expr(m);
          opt::opt_clean(m);
        });
    if (!out.committed)
      stats.sat.walker = opt::MuxtreeStats{};
  }
  if (options.enable_rewrite) {
    // The deep-optimization loop subsumes the plain fraig stage: fraig ->
    // rewrite pairs to convergence, closing fraig included.
    opt::DeepOptOptions deep;
    deep.fraig = options.fraig;
    deep.fraig.threads = options.threads;
    deep.rewrite = options.rewrite;
    deep.rewrite.threads = options.threads;
    deep.recovery = rp;
    if (gp != nullptr) {
      if (deep.fraig.guard == nullptr)
        deep.fraig.guard = gp;
      if (deep.rewrite.guard == nullptr)
        deep.rewrite.guard = gp;
    }
    const opt::DeepOptStats ds = opt::fraig_rewrite_loop(module, deep);
    stats.fraig = ds.fraig;
    stats.rewrite = ds.rewrite;
  } else if (options.enable_fraig) {
    sweep::FraigOptions fraig = options.fraig;
    fraig.threads = options.threads;
    if (gp != nullptr && fraig.guard == nullptr)
      fraig.guard = gp;
    stats.fraig = opt::fraig_stage(module, fraig, rp);
  }

  if (stage_guard != nullptr)
    stats.resource = stage_guard->report();
  stats.recovery = std::move(rctx.stats);
  return stats;
}

SmartlyStats smartly_flow(rtlil::Module& module, const SmartlyOptions& options) {
  const obs::Span span("pipeline", "pass.smartly_flow");
  // The coarse-opt stages around the pass get their own transaction context
  // (the pass builds one internally); quarantine continuity across the seam
  // is irrelevant — the opt_* passes have no fault sites or work units —
  // but their stats merge into the one report.
  opt::RecoveryContext rctx;
  rctx.options = options.recovery;
  rctx.engine_options = "coarse_opt";
  opt::RecoveryContext* rp = options.recovery.enabled ? &rctx : nullptr;

  opt::run_protected_stage(module, "opt-pre", rp, nullptr,
                           [](rtlil::Module& m, int) { opt::coarse_opt(m); });
  SmartlyStats stats = smartly_pass(module, options);
  opt::run_protected_stage(module, "opt-post", rp, nullptr,
                           [](rtlil::Module& m, int) { opt::coarse_opt(m); });
  if (rp != nullptr)
    stats.recovery += rctx.stats;
  return stats;
}

} // namespace smartly::core
