// Algebraic Decision Diagram (ADD) over selector bits (paper §III).
//
// "smaRTLy collects all the inputs of control ports and corresponding
// outputs, representing them as an Algebraic Decision Diagram. ADD is a
// generalization of BDD from {0,1} output sets to arbitrary finite output
// sets. … we use a simple heuristic algorithm: for each MUX, smaRTLy selects
// the signal that minimizes the total types of terminal nodes of the left
// and right children."
//
// The function is given extensionally: a table of 2^h terminal ids indexed
// by the selector value. Nodes are memoized on their cofactor table so equal
// sub-functions share one node (and later one rebuilt MUX).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smartly::core {

struct AddNode {
  int var;  ///< selector bit index this node tests
  int lo;   ///< child when bit = 0 (node id, or ~terminal_id when negative)
  int hi;   ///< child when bit = 1
};

/// `lo`/`hi`/`root` encoding: value >= 0 is an index into `nodes`;
/// value < 0 encodes terminal id `~value`.
struct AddResult {
  int root = ~0;
  std::vector<AddNode> nodes;
  /// Number of distinct internal nodes == number of MUXes after rebuild.
  size_t internal_nodes() const noexcept { return nodes.size(); }
  /// Longest root-to-terminal path (rebuild height criterion in Check()).
  int height() const;
};

inline bool add_is_terminal(int ref) noexcept { return ref < 0; }
inline int add_terminal_id(int ref) noexcept { return ~ref; }

/// Build a reduced, memoized ADD for `table` (size must be 2^num_bits) with
/// the paper's greedy bit-selection heuristic. Terminal ids are arbitrary
/// non-negative ints.
AddResult build_add(const std::vector<int>& table, int num_bits);

/// Reference ordering (bit 0 first) — used by tests/ablation to show the
/// value of the heuristic (paper: good assignment 3 MUXes, poor one 7).
AddResult build_add_fixed_order(const std::vector<int>& table, int num_bits);

/// Evaluate an ADD for a selector value (terminal id). Used by tests.
int add_eval(const AddResult& add, uint64_t sel_value);

} // namespace smartly::core
