// Incremental oracle engine (§II) — amortizes work across muxtree queries.
//
// The from-scratch InferenceOracle re-extracts the sub-graph, re-runs
// inference from an empty lattice, re-encodes to AIG/CNF, and constructs a
// fresh CDCL solver on every decide() call, even though consecutive queries
// share most of their logic cone. This engine keeps the *decision pipeline*
// bit-identical (syntactic → inference → simulation → SAT, same options,
// same verdicts) but reuses everything that is a pure function of inputs the
// caches can key on:
//
//   * decision cache  — exact (target, known-assignment) repeats, served
//     without any re-derivation. Flushed on every walker mutation
//     notification and at sweep boundaries following a mutating sweep, so a
//     hit is only possible when the module provably did not change between
//     the two queries.
//   * cone cache      — AIG encodings keyed by the sub-graph's structural
//     fingerprint (Subgraph::fingerprint) plus the query roots. The AIG is a
//     pure function of cell contents + roots, so a fingerprint hit is sound
//     by construction; a mutated cell changes its content hash and simply
//     stops matching. Walker notifications additionally evict entries
//     eagerly (bookkeeping + memory hygiene).
//   * persistent SAT  — one CDCL solver per module. Each cone is encoded
//     once as an activation-literal clause group (see CnfEncoder) and
//     queried under assumptions; invalidated groups are retired with a unit
//     ¬activation clause (`dropped_constraints`), and the solver itself is
//     rebuilt when variable garbage accumulates (`engine_resets`).
//   * pattern store   — satisfying assignments (sim witnesses and SAT
//     models) are kept as module-bit valuations and replayed first on later
//     queries; a verified both-polarity replay proves "not forced" without
//     enumeration or SAT (see sim::exhaustive_forced_ex).
//
// Correctness bar: decide() must return bit-identical CtrlDecisions to
// InferenceOracle on every query, including after walker mutations —
// enforced by tests/test_incremental_oracle.cpp and bench_oracle's
// decisions_match differential. The one documented exception: queries
// sitting exactly at the SAT conflict-budget edge, where the persistent
// solver's learned clauses (or a witness-skipped call's budget headroom) can
// resolve a query the baseline gave up on as Unknown.
#pragma once

#include "aig/aigmap.hpp"
#include "core/inference.hpp"
#include "core/sat_redundancy.hpp"
#include "core/subgraph.hpp"
#include "opt/muxtree_walker.hpp"
#include "sat/solver.hpp"
#include "util/hashing.hpp"

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace smartly::core {

struct IncrementalOracleOptions {
  SatRedundancyOptions base;        ///< same decision knobs as InferenceOracle
  size_t cone_cache_max = 4096;     ///< cone entries before a wholesale reset
  size_t decision_cache_max = 131072; ///< cached decisions before a wholesale flush
  size_t pattern_store_max = 64;    ///< recycled patterns kept (FIFO)
  size_t replay_max = 64;           ///< candidates replayed per query (one sim word)
  int solver_var_budget = 200000;   ///< persistent solver rebuilt above this
};

struct IncrementalOracleStats {
  size_t queries = 0;
  size_t decided_syntactic = 0;
  size_t decided_inference = 0;
  size_t decided_sim = 0;
  size_t decided_sat = 0;
  size_t dead_paths = 0;
  size_t skipped_too_large = 0;
  size_t gates_seen = 0;          ///< sub-graph gates before the relevance filter
  size_t gates_kept = 0;          ///< after the filter (cache hits skip extraction)
  size_t decision_cache_hits = 0; ///< exact-repeat queries ("subgraph cache")
  size_t cone_cache_hits = 0;     ///< AIG encodings reused
  size_t cone_cache_misses = 0;
  size_t sim_filter_kills = 0;    ///< queries settled at the simulation stage
  size_t sim_filter_half = 0;     ///< early-exited sweeps (both polarities seen)
  size_t sat_calls = 0;           ///< individual solve() invocations
  size_t skipped_halt = 0;        ///< queries answered Unknown after a halt, unsolved
  size_t skipped_quarantine = 0;  ///< queries answered Unknown for a quarantined target
  uint64_t solver_conflicts = 0;
  size_t sat_calls_skipped = 0;   ///< solve() calls a replayed witness made redundant
  size_t patterns_recycled = 0;   ///< replayed candidates consistent with constraints
  size_t cells_remapped = 0;      ///< walker mutation/removal notifications
  size_t engine_resets = 0;       ///< persistent solver rebuilds
  size_t dropped_constraints = 0; ///< clause groups retired via ¬activation
  size_t portable_hits = 0;    ///< persistent-memo hits (service warm cache)
  size_t portable_misses = 0;  ///< memo consultations that fell through
  size_t portable_inserts = 0; ///< definitive verdicts recorded into the memo
};

class IncrementalOracle final : public opt::MuxtreeOracle {
public:
  explicit IncrementalOracle(const IncrementalOracleOptions& options = {});
  ~IncrementalOracle() override;

  /// Legacy entry: builds a private NetlistIndex per sweep.
  void begin_module(rtlil::Module& module) override;
  /// Index-sharing entry: binds the walker's incrementally-maintained index.
  /// Also the per-region entry of the parallel sweep engine, which keeps one
  /// oracle per region (state is a function of region content alone — the
  /// thread-count determinism guarantee).
  void begin_module(rtlil::Module& module, const rtlil::NetlistIndex& index) override;
  opt::CtrlDecision decide(rtlil::SigBit ctrl, const opt::KnownMap& known) override;
  void notify_cell_mutated(rtlil::Cell* cell) override;
  void notify_cell_removed(rtlil::Cell* cell) override;
  /// Invalidate decisions whose cone read one of these (sweep-time canonical)
  /// nets as a boundary input — the same bit_to_queries_ retraction the
  /// oracle performs for its own removals' output classes, driven externally
  /// by the parallel engine for other regions' removals.
  void notify_external_rewire(const std::vector<rtlil::SigBit>& bits) override;

  /// Drop every cache and the persistent solver. The oracle only observes
  /// mutations the walker notifies it about; if anything else rewrites the
  /// module between optimize_muxtrees runs (opt_expr, opt_clean, ...), call
  /// this before reusing the oracle on that module — begin_module alone
  /// cannot tell an externally-mutated module from an unchanged one.
  void reset() { full_reset(); }

  const IncrementalOracleStats& stats() const noexcept { return stats_; }

private:
  struct QueryKey {
    rtlil::SigBit target;
    std::vector<std::pair<rtlil::SigBit, bool>> known; ///< sorted by SigBit

    bool operator==(const QueryKey& o) const noexcept {
      return target == o.target && known == o.known;
    }
  };
  struct QueryKeyHasher {
    size_t operator()(const QueryKey& k) const noexcept {
      uint64_t h = k.target.hash();
      for (const auto& [bit, value] : k.known)
        h = hash_combine(h, bit.hash() * 2 + (value ? 1 : 0));
      return static_cast<size_t>(h);
    }
  };

  /// One cached cone: the AIG encoding plus (lazily) its clause group in the
  /// persistent solver, generation-tagged so a solver rebuild invalidates it.
  struct ConeEntry {
    aig::AigMap cone;
    std::vector<rtlil::SigBit> input_bits; ///< AIG input index -> module bit
    std::vector<rtlil::Cell*> cells;       ///< for eager eviction bookkeeping
    bool encoded = false;
    uint64_t generation = 0;
    sat::Lit activation{};
    std::vector<sat::Var> vars; ///< AIG node -> solver var (snapshot)
  };

  ConeEntry& cone_for(const Subgraph& sg, rtlil::SigBit ctrl,
                      const std::vector<rtlil::SigBit>& known_bits);
  void ensure_encoded(ConeEntry& entry);
  void build_replay_candidates(const ConeEntry& entry);
  void remember_pattern(const ConeEntry& entry, const std::vector<uint8_t>& input_values);
  void invalidate_cell(rtlil::Cell* cell);
  void invalidate_decision(uint64_t id);
  void reset_solver();
  void full_reset();
  /// Cache a decision and return it. `definitive_unknown` marks an Unknown
  /// that is a pure function of the salted cone (exhaustive sim found no
  /// forcing, both polarities proved satisfiable, or the query is
  /// structurally out of scope) — such verdicts go into the portable memo;
  /// guard-halt, fault-injected, and budget-exhausted Unknowns never do.
  opt::CtrlDecision finish(const QueryKey& key, const Subgraph& sg,
                           opt::CtrlDecision decision, bool definitive_unknown = false);

  IncrementalOracleOptions options_;
  IncrementalOracleStats stats_;

  void flush_pending_removed();

  /// Portable-memo context of the in-flight decide() call: the canonical key
  /// (valid when pending_portable_ is set) and the options salt folded into
  /// every key so entries recorded under different oracle knobs never match.
  /// decide() is not reentrant, so per-call members are safe.
  Hash128 portable_key_{};
  bool pending_portable_ = false;
  uint64_t options_salt_ = 0;

  rtlil::Module* module_ = nullptr;
  const rtlil::NetlistIndex* index_ = nullptr;
  std::unique_ptr<rtlil::NetlistIndex> owned_index_;
  SubgraphScratch subgraph_scratch_;
  InferenceEngine engine_;
  std::vector<uint64_t> sim_scratch_;

  struct DecisionEntry {
    opt::CtrlDecision decision;
    uint64_t id; ///< handle the support indexes refer to
  };
  std::unordered_map<QueryKey, DecisionEntry, QueryKeyHasher> decision_cache_;
  /// id -> key of the live cache entry (pointers into decision_cache_ nodes,
  /// which unordered_map keeps stable until erased). The support indexes
  /// store ids, not key copies — one key allocation per cached decision
  /// instead of one per ball cell and boundary bit — and an id that has
  /// already been invalidated through one index simply misses here when the
  /// other index replays it.
  std::unordered_map<uint64_t, const QueryKey*> live_decisions_;
  uint64_t next_decision_id_ = 0;
  /// Inverted support index: ball cell -> decisions depending on it. Walker
  /// mutation notifications erase exactly the dependent entries.
  std::unordered_map<const rtlil::Cell*, std::vector<uint64_t>> cell_to_queries_;
  /// Second support index: boundary bit -> decisions. A decision can depend
  /// on a bit whose driver lies *outside* its extraction ball (the bit is a
  /// free input of the cone); when a removed mux's output class merges with
  /// other logic at sweep end, such decisions go stale without any ball cell
  /// having changed. Keyed on the sweep-time canonical bits.
  std::unordered_map<rtlil::SigBit, std::vector<uint64_t>> bit_to_queries_;
  /// Cells the walker scheduled for removal: they stay in the module until
  /// sweep end, so decisions cached after the notification may still depend
  /// on them — re-invalidated at the next begin_module.
  std::vector<rtlil::Cell*> pending_removed_;
  /// Canonical output bits of the pending-removed cells, recorded while the
  /// sweep's sigmap is still alive; drives the bit_to_queries_ invalidation.
  std::vector<rtlil::SigBit> pending_removed_bits_;

  std::unordered_map<Hash128, ConeEntry, Hash128Hasher> cone_cache_;
  std::unordered_map<const rtlil::Cell*, std::vector<Hash128>> cell_to_cones_;

  std::unique_ptr<sat::Solver> solver_;
  uint64_t solver_generation_ = 0;

  std::deque<std::unordered_map<rtlil::SigBit, bool>> patterns_;
  std::vector<std::vector<uint8_t>> replay_; ///< per-query candidate buffer
};

} // namespace smartly::core
