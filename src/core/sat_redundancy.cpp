#include "core/sat_redundancy.hpp"

#include "aig/aigmap.hpp"
#include "aig/cnf.hpp"
#include "core/incremental_oracle.hpp"
#include "core/inference.hpp"
#include "sim/packed_sim.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

#include <algorithm>

namespace smartly::core {

using opt::CtrlDecision;
using opt::KnownMap;
using rtlil::SigBit;

void InferenceOracle::begin_module(rtlil::Module& module) {
  module_ = &module;
  owned_index_ = std::make_unique<rtlil::NetlistIndex>(module);
  index_ = owned_index_.get();
}

void InferenceOracle::begin_module(rtlil::Module& module, const rtlil::NetlistIndex& index) {
  module_ = &module;
  owned_index_.reset();
  index_ = &index;
}

CtrlDecision InferenceOracle::decide(SigBit ctrl, const KnownMap& known) {
  ++stats_.queries;

  // Quarantined target (recovery layer): answer Unknown without deciding.
  // Placed before every stage so the skip is independent of cache state —
  // mirrored at the top of IncrementalOracle::decide (lockstep contract).
  // The same unit keys the "oracle.solve" fault site below.
  const uint64_t unit =
      ctrl.is_wire() ? util::bit_unit_id(ctrl.wire->name(), ctrl.offset) : 1;
  if (options_.quarantine != nullptr &&
      options_.quarantine->contains("oracle.solve", unit)) {
    ++stats_.skipped_quarantine;
    return CtrlDecision::Unknown;
  }

  // Stage 1: syntactic (what the baseline does).
  if (auto it = known.find(ctrl); it != known.end()) {
    ++stats_.decided_syntactic;
    return it->second ? CtrlDecision::One : CtrlDecision::Zero;
  }
  if (known.empty())
    return CtrlDecision::Unknown; // no path condition: nothing to infer from

  // Stage 2: bounded sub-graph around the control port and known signals
  // (scratch-reusing extraction: thousands of queries per module).
  known_bits_.clear();
  known_bits_.reserve(known.size());
  for (const auto& [bit, value] : known) {
    (void)value;
    known_bits_.push_back(bit);
  }
  const Subgraph sg = scratch_.extract(*module_, *index_, ctrl, known_bits_, options_.subgraph);
  stats_.gates_seen += sg.gates_before_filter;
  stats_.gates_kept += sg.cells.size();
  if (sg.cells.empty())
    return CtrlDecision::Unknown;

  // Stage 3: Table I inference rules.
  if (options_.use_inference) {
    InferenceEngine engine(sg.cells, index_->sigmap());
    bool ok = true;
    for (const auto& [bit, value] : known)
      ok = ok && engine.assume(bit, value);
    ok = ok && engine.propagate();
    if (!ok) {
      ++stats_.dead_paths;
      return CtrlDecision::DeadPath;
    }
    if (auto v = engine.value(ctrl)) {
      ++stats_.decided_inference;
      return *v ? CtrlDecision::One : CtrlDecision::Zero;
    }
  }
  if (!options_.use_sat)
    return CtrlDecision::Unknown;

  // Stage 4: bit-blast the sub-graph; roots = ctrl + all known bits so the
  // path condition can be asserted even on sub-graph-internal signals.
  std::vector<SigBit> roots;
  roots.push_back(ctrl);
  for (const SigBit& kb : known_bits_)
    roots.push_back(kb);
  const aig::AigMap cone = aig::aigmap_cone(*module_, *index_, sg.cells, roots);

  auto aig_lit_of = [&](const SigBit& bit) -> std::optional<aig::Lit> {
    auto it = cone.bits.find(bit);
    if (it == cone.bits.end())
      return std::nullopt;
    return it->second;
  };
  const auto target_lit = aig_lit_of(ctrl);
  if (!target_lit)
    return CtrlDecision::Unknown;

  std::vector<std::pair<aig::Lit, bool>> constraints;
  for (const auto& [bit, value] : known) {
    if (auto l = aig_lit_of(bit))
      constraints.emplace_back(*l, value);
    // Known bits outside the sub-graph cannot be asserted; dropping them is
    // sound (fewer constraints can only weaken deductions, never falsify).
  }

  const int n_inputs = static_cast<int>(cone.aig.num_inputs());

  // Stage 4a: exhaustive simulation ("for a smaller number of inputs,
  // simulation is more efficient").
  if (n_inputs <= options_.sim_max_inputs) {
    sim::SimOptions sim_opts;
    sim_opts.max_free_inputs = options_.sim_max_inputs;
    const sim::SimResult sr =
        sim::exhaustive_forced_ex(cone.aig, constraints, *target_lit, sim_opts);
    ++stats_.sim_filter_kills;
    if (sr.early_exit)
      ++stats_.sim_filter_half;
    switch (sr.forced) {
    case sim::Forced::Zero: ++stats_.decided_sim; return CtrlDecision::Zero;
    case sim::Forced::One: ++stats_.decided_sim; return CtrlDecision::One;
    case sim::Forced::Contradiction: ++stats_.dead_paths; return CtrlDecision::DeadPath;
    case sim::Forced::None: return CtrlDecision::Unknown;
    }
  }

  // Stage 4b: SAT. Skip if the sub-graph is too large ("threshold for the
  // number of inputs … to prevent the optimization process from becoming a
  // bottleneck").
  if (n_inputs > options_.sat_max_inputs) {
    ++stats_.skipped_too_large;
    return CtrlDecision::Unknown;
  }

  // Resource-governed skip: a halt observed mid-phase (deadline/cancel/fault
  // only — deterministic budgets arm the flag at engine barriers, after
  // which the engines stop querying) degrades the query to Unknown, which
  // the walker treats as "leave the tree alone". Mirrored in
  // IncrementalOracle::decide to keep the lockstep contract.
  if ((options_.guard != nullptr && options_.guard->poll()) ||
      util::fault_unknown("oracle.solve", unit)) {
    ++stats_.skipped_halt;
    if (options_.guard != nullptr)
      options_.guard->note_skipped_solves();
    return CtrlDecision::Unknown;
  }

  sat::Solver solver;
  solver.set_conflict_budget(options_.sat_conflict_budget);
  if (options_.guard != nullptr && options_.guard->wants_interrupts())
    solver.set_interrupt_check([g = options_.guard] { return g->poll(); });
  aig::CnfEncoder enc(solver);
  enc.encode(cone.aig);

  std::vector<sat::Lit> assumptions;
  for (const auto& [l, v] : constraints)
    assumptions.push_back(v ? enc.lit(l) : ~enc.lit(l));

  // Keep this decision tree in lockstep with IncrementalOracle::decide
  // (incremental_oracle.cpp): the incremental oracle's correctness bar is
  // returning bit-identical verdicts to this code on every query.
  uint64_t conflicts_seen = 0;
  uint64_t propagations_seen = 0;
  auto solve_with = [&](bool target_value) {
    ++stats_.sat_calls;
    std::vector<sat::Lit> a = assumptions;
    a.push_back(target_value ? enc.lit(*target_lit) : ~enc.lit(*target_lit));
    const sat::Result r = solver.solve(a);
    stats_.solver_conflicts += solver.stats().conflicts - conflicts_seen;
    if (options_.guard != nullptr) {
      options_.guard->charge_conflicts(solver.stats().conflicts - conflicts_seen);
      options_.guard->charge_propagations(solver.stats().propagations - propagations_seen);
    }
    conflicts_seen = solver.stats().conflicts;
    propagations_seen = solver.stats().propagations;
    return r;
  };

  const sat::Result r1 = solve_with(true);
  if (r1 == sat::Result::Unsat) {
    const sat::Result r0 = solve_with(false);
    if (r0 == sat::Result::Unsat) {
      ++stats_.dead_paths;
      return CtrlDecision::DeadPath;
    }
    ++stats_.decided_sat;
    return CtrlDecision::Zero; // s=1 impossible
  }
  const sat::Result r0 = solve_with(false);
  if (r0 == sat::Result::Unsat) {
    ++stats_.decided_sat;
    return CtrlDecision::One; // s=0 impossible
  }
  return CtrlDecision::Unknown;
}

SatRedundancyStats sat_redundancy(rtlil::Module& module, const SatRedundancyOptions& options) {
  InferenceOracle oracle(options);
  const opt::MuxtreeStats walker_stats = opt::optimize_muxtrees(module, oracle);
  SatRedundancyStats stats = oracle.stats();
  stats.walker = walker_stats;
  return stats;
}

SatRedundancyStats sat_redundancy_parallel(rtlil::Module& module,
                                           const SatRedundancyOptions& options, int threads,
                                           opt::DecisionTrace* trace,
                                           opt::ParallelSweepStats* sweep_out,
                                           int max_iterations) {
  opt::ParallelSweepOptions po;
  po.threads = threads;
  po.ball_radius = options.subgraph.depth;
  po.guard = options.guard;
  po.quarantine = options.quarantine;
  if (max_iterations >= 0)
    po.max_iterations = std::min(po.max_iterations, static_cast<size_t>(max_iterations));
  IncrementalOracleOptions io;
  io.base = options;
  po.make_oracle = [&io]() -> std::unique_ptr<opt::MuxtreeOracle> {
    return std::make_unique<IncrementalOracle>(io);
  };

  opt::ParallelSweepEngine engine(module, po);
  const opt::ParallelSweepStats sweep = engine.run(trace);
  if (sweep_out)
    *sweep_out = sweep;

  // Oracle state is per region, so every counter is a deterministic function
  // of region content; the aggregate is the same for every thread count and
  // region->worker assignment.
  SatRedundancyStats stats;
  for (const auto& oracle : engine.oracles()) {
    const auto& os = static_cast<const IncrementalOracle&>(*oracle).stats();
    stats.queries += os.queries;
    stats.decided_syntactic += os.decided_syntactic;
    stats.decided_inference += os.decided_inference;
    stats.decided_sim += os.decided_sim;
    stats.decided_sat += os.decided_sat;
    stats.dead_paths += os.dead_paths;
    stats.skipped_too_large += os.skipped_too_large;
    stats.gates_seen += os.gates_seen;
    stats.gates_kept += os.gates_kept;
    stats.sim_filter_kills += os.sim_filter_kills;
    stats.sim_filter_half += os.sim_filter_half;
    stats.sat_calls += os.sat_calls;
    stats.skipped_halt += os.skipped_halt;
    stats.skipped_quarantine += os.skipped_quarantine;
    stats.solver_conflicts += os.solver_conflicts;
    stats.portable_hits += os.portable_hits;
    stats.portable_misses += os.portable_misses;
    stats.portable_inserts += os.portable_inserts;
  }
  stats.walker = sweep.walker;
  return stats;
}

} // namespace smartly::core
