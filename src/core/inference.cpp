#include "core/inference.hpp"

#include "util/log.hpp"

namespace smartly::core {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

void InferenceEngine::reset(const std::vector<Cell*>& cells, const rtlil::SigMap& sigmap) {
  // clear() keeps each container's buckets/capacity — the whole point of
  // reusing the engine across queries.
  sigmap_ = &sigmap;
  cells_ = cells;
  touching_.clear();
  values_.clear();
  worklist_.clear();
  in_worklist_.clear();
  contradiction_ = false;
  for (Cell* c : cells_) {
    for (int pi = 0; pi < rtlil::kPortCount; ++pi) {
      const Port p = static_cast<Port>(pi);
      if (!c->has_port(p))
        continue;
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = (*sigmap_)(raw);
        if (bit.is_wire())
          touching_[bit].push_back(c);
      }
    }
  }
}

std::optional<bool> InferenceEngine::bit_value(const SigBit& raw) const {
  const SigBit bit = (*sigmap_)(raw);
  if (bit.is_const()) {
    if (bit.data == State::S0)
      return false;
    if (bit.data == State::S1)
      return true;
    return std::nullopt; // x/z: unconstrained
  }
  auto it = values_.find(bit);
  if (it == values_.end())
    return std::nullopt;
  return it->second;
}

std::optional<bool> InferenceEngine::value(SigBit bit) const { return bit_value(bit); }

bool InferenceEngine::set_value(SigBit raw, bool v) {
  const SigBit bit = (*sigmap_)(raw);
  if (bit.is_const()) {
    const bool cv = bit.data == State::S1;
    if (!rtlil::state_is_def(bit.data))
      return true; // x: cannot contradict
    if (cv != v)
      contradiction_ = true;
    return !contradiction_;
  }
  auto [it, inserted] = values_.emplace(bit, v);
  if (!inserted) {
    if (it->second != v)
      contradiction_ = true;
    return !contradiction_;
  }
  // Wake all cells touching this bit.
  auto t = touching_.find(bit);
  if (t != touching_.end()) {
    for (Cell* c : t->second) {
      if (!in_worklist_[c]) {
        in_worklist_[c] = true;
        worklist_.push_back(c);
      }
    }
  }
  return true;
}

bool InferenceEngine::assume(SigBit bit, bool value) { return set_value(bit, value); }

bool InferenceEngine::propagate() {
  // Initially evaluate every cell once (seeds may already decide things).
  for (Cell* c : cells_) {
    if (!in_worklist_[c]) {
      in_worklist_[c] = true;
      worklist_.push_back(c);
    }
  }
  while (!worklist_.empty() && !contradiction_) {
    Cell* c = worklist_.back();
    worklist_.pop_back();
    in_worklist_[c] = false;
    if (!infer_cell(c))
      return false;
  }
  return !contradiction_;
}

bool InferenceEngine::infer_cell(Cell* cell) {
  const CellType t = cell->type();

  auto A = [&](int i) { return bit_value(cell->port(Port::A)[i]); };
  auto B = [&](int i) { return bit_value(cell->port(Port::B)[i]); };
  auto Y = [&](int i) { return bit_value(cell->port(Port::Y)[i]); };
  auto setA = [&](int i, bool v) { return set_value(cell->port(Port::A)[i], v); };
  auto setB = [&](int i, bool v) { return set_value(cell->port(Port::B)[i], v); };
  auto setY = [&](int i, bool v) { return set_value(cell->port(Port::Y)[i], v); };

  const int aw = cell->has_port(Port::A) ? cell->port(Port::A).size() : 0;
  const int bw = cell->has_port(Port::B) ? cell->port(Port::B).size() : 0;
  const int yw = cell->has_port(Port::Y) ? cell->port(Port::Y).size() : 0;

  switch (t) {
  case CellType::Not: {
    // Bitwise involution: y[i] = !a[i] in both directions. Extension bits of
    // y (beyond aw) are ~fill; only handled for the unsigned case (fill 0).
    for (int i = 0; i < yw; ++i) {
      if (i >= aw) {
        if (!cell->params().a_signed && !setY(i, true))
          return false;
        continue;
      }
      if (auto v = A(i); v && !setY(i, !*v))
        return false;
      if (auto v = Y(i); v && !setA(i, !*v))
        return false;
    }
    return true;
  }

  case CellType::And:
  case CellType::Or: {
    const bool is_or = t == CellType::Or;
    // Table I (OR): a=1 ⇒ y=1; a=b=0 ⇒ y=0; y=0 ⇒ a=b=0; y=1 ∧ a=0 ⇒ b=1.
    // AND is the dual. Applied bitwise; unsigned zero-extension of narrow
    // operands contributes constant 0 bits.
    for (int i = 0; i < yw; ++i) {
      auto a = (i < aw) ? A(i) : (cell->params().a_signed && aw > 0 ? A(aw - 1)
                                                                    : std::optional<bool>(false));
      auto b = (i < bw) ? B(i) : (cell->params().b_signed && bw > 0 ? B(bw - 1)
                                                                    : std::optional<bool>(false));
      auto y = Y(i);
      const bool dominant = is_or; // OR: 1 dominates; AND: 0 dominates
      // forward
      if (a && *a == dominant && !setY(i, dominant))
        return false;
      if (b && *b == dominant && !setY(i, dominant))
        return false;
      if (a && b && *a != dominant && *b != dominant && !setY(i, !dominant))
        return false;
      // backward
      if (y && *y != dominant) {
        if (i < aw && !setA(i, !dominant))
          return false;
        if (i < bw && !setB(i, !dominant))
          return false;
      }
      if (y && *y == dominant) {
        if (a && *a != dominant && i < bw && !setB(i, dominant))
          return false;
        if (b && *b != dominant && i < aw && !setA(i, dominant))
          return false;
      }
    }
    return true;
  }

  case CellType::Xor:
  case CellType::Xnor: {
    const bool flip = t == CellType::Xnor;
    for (int i = 0; i < yw; ++i) {
      auto a = (i < aw) ? A(i) : std::optional<bool>(false);
      auto b = (i < bw) ? B(i) : std::optional<bool>(false);
      auto y = Y(i);
      // Any two of (a, b, y) determine the third.
      if (a && b && !setY(i, (*a != *b) != flip))
        return false;
      if (a && y && i < bw && !setB(i, (*a != *y) != flip))
        return false;
      if (b && y && i < aw && !setA(i, (*b != *y) != flip))
        return false;
    }
    return true;
  }

  case CellType::LogicNot:
  case CellType::ReduceOr:
  case CellType::ReduceBool: {
    // y = |a  (LogicNot: y = !(|a)).
    const bool neg = t == CellType::LogicNot;
    auto y = Y(0);
    int unknown = -1, n_unknown = 0, n_one = 0;
    for (int i = 0; i < aw; ++i) {
      auto v = A(i);
      if (!v) {
        unknown = i;
        ++n_unknown;
      } else if (*v) {
        ++n_one;
      }
    }
    if (n_one > 0 && !setY(0, !neg))
      return false;
    if (n_unknown == 0 && n_one == 0 && !setY(0, neg))
      return false;
    if (y && *y == neg) { // |a must be 0: every bit is 0
      for (int i = 0; i < aw; ++i)
        if (!setA(i, false))
          return false;
    }
    if (y && *y == !neg && n_unknown == 1 && n_one == 0) {
      // |a = 1 with exactly one undetermined bit: that bit is 1.
      if (!setA(unknown, true))
        return false;
    }
    for (int i = 1; i < yw; ++i)
      if (!setY(i, false))
        return false;
    return true;
  }

  case CellType::ReduceAnd: {
    auto y = Y(0);
    int unknown = -1, n_unknown = 0, n_zero = 0;
    for (int i = 0; i < aw; ++i) {
      auto v = A(i);
      if (!v) {
        unknown = i;
        ++n_unknown;
      } else if (!*v) {
        ++n_zero;
      }
    }
    if (n_zero > 0 && !setY(0, false))
      return false;
    if (n_unknown == 0 && n_zero == 0 && !setY(0, true))
      return false;
    if (y && *y) {
      for (int i = 0; i < aw; ++i)
        if (!setA(i, true))
          return false;
    }
    if (y && !*y && n_unknown == 1 && n_zero == 0) {
      if (!setA(unknown, false))
        return false;
    }
    for (int i = 1; i < yw; ++i)
      if (!setY(i, false))
        return false;
    return true;
  }

  case CellType::ReduceXor:
  case CellType::ReduceXnor: {
    const bool flip = t == CellType::ReduceXnor;
    int n_unknown = 0, unknown = -1;
    bool parity = false;
    for (int i = 0; i < aw; ++i) {
      auto v = A(i);
      if (!v) {
        ++n_unknown;
        unknown = i;
      } else {
        parity ^= *v;
      }
    }
    auto y = Y(0);
    if (n_unknown == 0 && !setY(0, parity != flip))
      return false;
    if (n_unknown == 1 && y && !setA(unknown, ((*y != flip) != parity)))
      return false;
    for (int i = 1; i < yw; ++i)
      if (!setY(i, false))
        return false;
    return true;
  }

  case CellType::LogicAnd:
  case CellType::LogicOr: {
    // y = (|a) op (|b). Full tables only when both operands are 1-bit;
    // otherwise forward-only via the determined reductions.
    auto red = [&](Port p, int w) -> std::optional<bool> {
      int ones = 0, unknowns = 0;
      for (int i = 0; i < w; ++i) {
        auto v = bit_value(cell->port(p)[i]);
        if (!v)
          ++unknowns;
        else if (*v)
          ++ones;
      }
      if (ones > 0)
        return true;
      if (unknowns == 0)
        return false;
      return std::nullopt;
    };
    const auto ra = red(Port::A, aw);
    const auto rb = red(Port::B, bw);
    const bool is_and = t == CellType::LogicAnd;
    auto y = Y(0);
    if (is_and) {
      if ((ra && !*ra) || (rb && !*rb)) {
        if (!setY(0, false))
          return false;
      } else if (ra && rb && !setY(0, true))
        return false;
      if (y && *y) { // both sides must be true
        if (aw == 1 && !setA(0, true))
          return false;
        if (bw == 1 && !setB(0, true))
          return false;
      }
      if (y && !*y) {
        if (ra && *ra && bw == 1 && !setB(0, false))
          return false;
        if (rb && *rb && aw == 1 && !setA(0, false))
          return false;
      }
    } else {
      if ((ra && *ra) || (rb && *rb)) {
        if (!setY(0, true))
          return false;
      } else if (ra && rb && !setY(0, false))
        return false;
      if (y && !*y) {
        if (aw == 1 && !setA(0, false))
          return false;
        if (bw == 1 && !setB(0, false))
          return false;
      }
      if (y && *y) {
        if (ra && !*ra && bw == 1 && !setB(0, true))
          return false;
        if (rb && !*rb && aw == 1 && !setA(0, true))
          return false;
      }
    }
    for (int i = 1; i < yw; ++i)
      if (!setY(i, false))
        return false;
    return true;
  }

  case CellType::Eq:
  case CellType::Ne: {
    const bool is_eq = t == CellType::Eq;
    if ((cell->params().a_signed || cell->params().b_signed) && aw != bw)
      return true; // sign extension not modelled by these rules
    const int w = std::max(aw, bw);
    auto ext = [&](Port p, int pw, int i) -> std::optional<bool> {
      if (i < pw)
        return bit_value(cell->port(p)[i]);
      return false; // unsigned zero extension (subset: signed eq not inferred)
    };
    // forward: definite mismatch / full match
    bool mismatch = false;
    int n_unknown = 0;
    for (int i = 0; i < w; ++i) {
      auto a = ext(Port::A, aw, i);
      auto b = ext(Port::B, bw, i);
      if (!a || !b) {
        ++n_unknown;
        continue;
      }
      if (*a != *b)
        mismatch = true;
    }
    if (mismatch && !setY(0, !is_eq))
      return false;
    if (!mismatch && n_unknown == 0 && !setY(0, is_eq))
      return false;
    // backward: y says "equal" -> copy known bits across
    auto y = Y(0);
    if (y && (*y == is_eq)) {
      for (int i = 0; i < w; ++i) {
        auto a = ext(Port::A, aw, i);
        auto b = ext(Port::B, bw, i);
        if (a && !b && i < bw && !setB(i, *a))
          return false;
        if (b && !a && i < aw && !setA(i, *b))
          return false;
      }
    }
    // backward: y says "not equal" with exactly one free bit and all other
    // bit pairs equal -> that pair must differ.
    if (y && (*y != is_eq)) {
      int free_i = -1, free_n = 0;
      bool any_diff = false;
      for (int i = 0; i < w; ++i) {
        auto a = ext(Port::A, aw, i);
        auto b = ext(Port::B, bw, i);
        if (a && b) {
          if (*a != *b)
            any_diff = true;
          continue;
        }
        if ((a && !b) || (b && !a)) {
          ++free_n;
          free_i = i;
        } else {
          free_n += 2; // both free: no deduction
        }
      }
      if (!any_diff && free_n == 1) {
        auto a = ext(Port::A, aw, free_i);
        auto b = ext(Port::B, bw, free_i);
        if (a && free_i < bw && !setB(free_i, !*a))
          return false;
        if (b && free_i < aw && !setA(free_i, !*b))
          return false;
      }
    }
    for (int i = 1; i < yw; ++i)
      if (!setY(i, false))
        return false;
    return true;
  }

  case CellType::Mux: {
    auto s = bit_value(cell->port(Port::S)[0]);
    for (int i = 0; i < yw; ++i) {
      auto a = A(i);
      auto b = B(i);
      auto y = Y(i);
      if (s) {
        // Selected side flows both directions.
        if (*s) {
          if (b && !setY(i, *b))
            return false;
          if (y && !setB(i, *y))
            return false;
        } else {
          if (a && !setY(i, *a))
            return false;
          if (y && !setA(i, *y))
            return false;
        }
      } else {
        if (a && b && *a == *b && !setY(i, *a))
          return false;
        // y differs from one side -> select the other side.
        if (y && a && *y != *a && !set_value(cell->port(Port::S)[0], true))
          return false;
        if (y && b && *y != *b && !set_value(cell->port(Port::S)[0], false))
          return false;
      }
    }
    return true;
  }

  case CellType::Pmux: {
    // Forward only: if every select bit is known, the selected part flows.
    const int width = cell->params().width;
    const SigSpec& s = cell->port(Port::S);
    int sel = -1; // -2 unknown, -1 none
    for (int i = 0; i < s.size(); ++i) {
      auto v = bit_value(s[i]);
      if (!v) {
        sel = -2;
        break;
      }
      if (*v) {
        sel = i;
        break;
      }
    }
    if (sel == -2)
      return true;
    for (int i = 0; i < width; ++i) {
      const SigBit src = sel < 0 ? cell->port(Port::A)[i]
                                 : cell->port(Port::B)[sel * width + i];
      if (auto v = bit_value(src); v && !setY(i, *v))
        return false;
      if (auto v = Y(i); v && !set_value(src, *v))
        return false;
    }
    return true;
  }

  default:
    // Arithmetic / shifts / comparisons other than eq: no inference rules
    // (the SAT/simulation stage covers them via the bit-blasted sub-graph).
    return true;
  }
}

} // namespace smartly::core
