#include "core/subgraph.hpp"

#include "util/log.hpp"

#include <deque>
#include <unordered_map>

namespace smartly::core {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::NetlistIndex;
using rtlil::Port;
using rtlil::SigBit;

namespace {

/// Cells adjacent to a bit in the undirected netlist graph: its driver plus
/// all its readers (sequential cells excluded — they cut the sub-graph).
void adjacent_cells(const NetlistIndex& index, const SigBit& bit, std::vector<Cell*>& out) {
  if (Cell* d = index.driver(bit); d && d->type() != CellType::Dff)
    out.push_back(d);
  for (Cell* r : index.readers(bit))
    if (r->type() != CellType::Dff)
      out.push_back(r);
}

} // namespace

Subgraph extract_subgraph(const rtlil::Module& module, const NetlistIndex& index,
                          SigBit target, const std::vector<SigBit>& known,
                          const SubgraphOptions& options) {
  (void)module;
  Subgraph out;

  // --- stage 1: undirected ball of radius k around target + known ---------
  // ("all logical gates within a specified distance k from the control port")
  std::unordered_map<Cell*, int> depth;
  std::deque<Cell*> queue;
  std::vector<Cell*> seed_cells;
  adjacent_cells(index, target, seed_cells);
  for (const SigBit& kb : known)
    adjacent_cells(index, kb, seed_cells);
  for (Cell* c : seed_cells) {
    if (depth.emplace(c, 0).second)
      queue.push_back(c);
  }
  while (!queue.empty()) {
    Cell* c = queue.front();
    queue.pop_front();
    const int d = depth[c];
    if (d >= options.depth)
      continue;
    std::vector<Cell*> next;
    for (int pi = 0; pi < rtlil::kPortCount; ++pi) {
      const Port p = static_cast<Port>(pi);
      if (!c->has_port(p))
        continue;
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = index.sigmap()(raw);
        if (bit.is_wire())
          adjacent_cells(index, bit, next);
      }
    }
    for (Cell* n : next) {
      if (depth.emplace(n, d + 1).second)
        queue.push_back(n);
    }
  }
  out.gates_before_filter = depth.size();

  // --- stage 2: Theorem II.1 relevance filter ------------------------------
  // A signal can constrain or be constrained by {target} ∪ known only through
  // common ancestors (Theorems II.1/II.2), so for encoding the question
  // "is target forced?" the gates that matter are exactly those whose output
  // is an ancestor of the target or of a known signal. Everything else in the
  // ball is dismissed (paper: "the method can dismiss about 80% gates").
  std::unordered_set<Cell*> kept;
  if (options.relevance_filter) {
    std::deque<SigBit> bitq;
    std::unordered_set<SigBit> seen_bits;
    auto push_bit = [&](const SigBit& b) {
      if (b.is_wire() && seen_bits.insert(b).second)
        bitq.push_back(b);
    };
    push_bit(target);
    for (const SigBit& kb : known)
      push_bit(kb);
    while (!bitq.empty()) {
      const SigBit bit = bitq.front();
      bitq.pop_front();
      Cell* d = index.driver(bit);
      if (!d || d->type() == CellType::Dff)
        continue;
      if (!depth.count(d))
        continue; // outside the ball: becomes a boundary input
      if (!kept.insert(d).second)
        continue;
      for (Port p : d->input_ports())
        for (const SigBit& raw : d->port(p))
          push_bit(index.sigmap()(raw));
    }
  } else {
    for (const auto& [cell, d] : depth) {
      (void)d;
      kept.insert(cell);
    }
  }

  out.cells.assign(kept.begin(), kept.end());

  // --- boundary: bits read inside but not driven inside --------------------
  std::unordered_set<SigBit> driven;
  for (Cell* c : out.cells)
    for (const SigBit& raw : c->port(c->output_port())) {
      const SigBit bit = index.sigmap()(raw);
      if (bit.is_wire())
        driven.insert(bit);
    }
  std::unordered_set<SigBit> boundary;
  for (Cell* c : out.cells)
    for (Port p : c->input_ports())
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = index.sigmap()(raw);
        if (bit.is_wire() && !driven.count(bit) && boundary.insert(bit).second)
          out.boundary.push_back(bit);
      }
  return out;
}

} // namespace smartly::core
