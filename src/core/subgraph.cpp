#include "core/subgraph.hpp"

#include "util/log.hpp"

#include <algorithm>

namespace smartly::core {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::NetlistIndex;
using rtlil::Port;
using rtlil::SigBit;

// Adjacency comes from rtlil::combinational_adjacent_cells: region
// partitioning (opt/region_partition.cpp) must over-approximate these balls,
// so extraction and partitioning share one definition.
using rtlil::combinational_adjacent_cells;

uint64_t cell_content_hash(const rtlil::Cell& cell, const rtlil::SigMap& sigmap) {
  uint64_t h = hash_mix(0x5eedc0de ^ static_cast<uint64_t>(cell.type()));
  const auto& p = cell.params();
  h = hash_combine(h, static_cast<uint64_t>(p.a_width));
  h = hash_combine(h, static_cast<uint64_t>(p.b_width));
  h = hash_combine(h, static_cast<uint64_t>(p.y_width));
  h = hash_combine(h, static_cast<uint64_t>(p.width));
  h = hash_combine(h, static_cast<uint64_t>(p.s_width));
  h = hash_combine(h, static_cast<uint64_t>(p.a_signed) * 2 + static_cast<uint64_t>(p.b_signed));
  for (int pi = 0; pi < rtlil::kPortCount; ++pi) {
    const Port port = static_cast<Port>(pi);
    if (!cell.has_port(port))
      continue;
    h = hash_combine(h, 0x1000u + static_cast<uint64_t>(pi));
    for (const SigBit& raw : cell.port(port))
      h = hash_combine(h, sigmap(raw).hash());
  }
  return h;
}

Hash128 Subgraph::fingerprint(const rtlil::SigMap& sigmap) const {
  Hash128 fp = hash128_combine({}, cells.size());
  for (const Cell* c : cells)
    hash128_mix_unordered(fp, cell_content_hash(*c, sigmap));
  return fp;
}

Subgraph SubgraphScratch::extract(const rtlil::Module& module, const NetlistIndex& index,
                                  SigBit target, const std::vector<SigBit>& known,
                                  const SubgraphOptions& options) {
  (void)module;
  Subgraph out;

  depth_.clear();
  queue_.clear();
  seeds_.clear();
  kept_.clear();
  bitq_.clear();
  seen_bits_.clear();
  driven_.clear();
  boundary_.clear();

  // --- stage 1: undirected ball of radius k around target + known ---------
  // ("all logical gates within a specified distance k from the control port")
  combinational_adjacent_cells(index, target, seeds_);
  for (const SigBit& kb : known)
    combinational_adjacent_cells(index, kb, seeds_);
  for (Cell* c : seeds_) {
    if (depth_.emplace(c, 0).second)
      queue_.push_back(c);
  }
  while (!queue_.empty()) {
    Cell* c = queue_.front();
    queue_.pop_front();
    const int d = depth_[c];
    if (d >= options.depth)
      continue;
    next_.clear();
    for (int pi = 0; pi < rtlil::kPortCount; ++pi) {
      const Port p = static_cast<Port>(pi);
      if (!c->has_port(p))
        continue;
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = index.sigmap()(raw);
        if (bit.is_wire())
          combinational_adjacent_cells(index, bit, next_);
      }
    }
    for (Cell* n : next_) {
      if (depth_.emplace(n, d + 1).second)
        queue_.push_back(n);
    }
  }
  out.gates_before_filter = depth_.size();
  // The ball is the decision's *support*: the walker only ever shrinks cell
  // ports, so a later query with the same target/known re-derives the same
  // answer unless some ball cell was mutated or removed in between. Callers
  // caching decisions key their invalidation on exactly this set.
  out.ball.reserve(depth_.size());
  for (const auto& [cell, d] : depth_) {
    (void)d;
    out.ball.push_back(cell);
  }

  // --- stage 2: Theorem II.1 relevance filter ------------------------------
  // A signal can constrain or be constrained by {target} ∪ known only through
  // common ancestors (Theorems II.1/II.2), so for encoding the question
  // "is target forced?" the gates that matter are exactly those whose output
  // is an ancestor of the target or of a known signal. Everything else in the
  // ball is dismissed (paper: "the method can dismiss about 80% gates").
  if (options.relevance_filter) {
    auto push_bit = [&](const SigBit& b) {
      if (b.is_wire() && seen_bits_.insert(b).second)
        bitq_.push_back(b);
    };
    push_bit(target);
    for (const SigBit& kb : known)
      push_bit(kb);
    while (!bitq_.empty()) {
      const SigBit bit = bitq_.front();
      bitq_.pop_front();
      Cell* d = index.driver(bit);
      if (!d || d->type() == CellType::Dff)
        continue;
      if (!depth_.count(d))
        continue; // outside the ball: becomes a boundary input
      if (!kept_.insert(d).second)
        continue;
      for (Port p : d->input_ports())
        for (const SigBit& raw : d->port(p))
          push_bit(index.sigmap()(raw));
    }
  } else {
    for (const auto& [cell, d] : depth_) {
      (void)d;
      kept_.insert(cell);
    }
  }

  out.cells.assign(kept_.begin(), kept_.end());

  // --- boundary: bits read inside but not driven inside --------------------
  for (Cell* c : out.cells)
    for (const SigBit& raw : c->port(c->output_port())) {
      const SigBit bit = index.sigmap()(raw);
      if (bit.is_wire())
        driven_.insert(bit);
    }
  for (Cell* c : out.cells)
    for (Port p : c->input_ports())
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = index.sigmap()(raw);
        if (bit.is_wire() && !driven_.count(bit) && boundary_.insert(bit).second)
          out.boundary.push_back(bit);
      }
  return out;
}

Subgraph extract_subgraph(const rtlil::Module& module, const NetlistIndex& index,
                          SigBit target, const std::vector<SigBit>& known,
                          const SubgraphOptions& options) {
  SubgraphScratch scratch;
  return scratch.extract(module, index, target, known, options);
}

} // namespace smartly::core
