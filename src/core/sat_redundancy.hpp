// SAT-based redundancy elimination (paper §II) — smaRTLy's first engine.
//
// Plugs into the shared muxtree walker as an oracle: for each descendant
// control bit it (1) looks the bit up among the path-known signals,
// (2) extracts a distance-k sub-graph reduced by the Theorem II.1 relevance
// filter, (3) runs the Table I inference rules, and (4) if still undecided,
// asks exhaustive simulation (few free inputs) or the CDCL solver
// (SAT(s=0) / SAT(s=1)) whether the bit is forced.
#pragma once

#include "core/subgraph.hpp"
#include "opt/muxtree_walker.hpp"
#include "opt/parallel_sweep.hpp"

#include <memory>

namespace smartly::core {

/// Cross-process decision memo consulted by IncrementalOracle (service warm
/// cache). Keys are *portable* canonical fingerprints of (cone structure,
/// target role, known-value assignment) — pure functions of content, no
/// pointers or process-local state — so an entry written by one daemon run
/// is sound in the next: a hit replays a decision the full pipeline provably
/// made on an isomorphic cone under the same constraints and oracle options.
/// Only verdicts that are deterministic functions of the salted cone are
/// ever inserted: Zero/One/DeadPath always, and Unknown only when proven
/// not-forced (exhaustive simulation found no forcing, or both polarities
/// were shown satisfiable). A guard-halt, fault-injected, or
/// budget-exhausted Unknown could resolve on a retry and is never inserted.
///
/// Implementations must be thread-safe: the parallel sweep engine's
/// per-region oracles share one memo across workers.
///
/// Lockstep caveat: the from-scratch InferenceOracle never consults a memo,
/// so memo-enabled runs extend the documented budget-edge exception — a hit
/// can resolve a query whose fresh recomputation would exhaust the per-query
/// conflict budget into Unknown. The differential gates (bench_oracle) run
/// memo-less.
class PortableDecisionMemo {
public:
  virtual ~PortableDecisionMemo() = default;
  /// Returns true and fills `*out` on a hit.
  virtual bool lookup(const Hash128& key, opt::CtrlDecision* out) const = 0;
  virtual void insert(const Hash128& key, opt::CtrlDecision decision) = 0;
};

struct SatRedundancyOptions {
  SubgraphOptions subgraph;     ///< distance k and relevance filter toggle
  int sim_max_inputs = 14;      ///< exhaustive simulation up to 2^14 patterns
  int sat_max_inputs = 4096;    ///< "threshold for the number of inputs": skip SAT above
  int64_t sat_conflict_budget = 20000; ///< per-query conflict cap (Unknown above)
  bool use_inference = true;    ///< Table I rules (ablatable)
  bool use_sat = true;          ///< sim/SAT stage (ablatable; inference-only otherwise)
  /// Optional run-wide resource governor (not owned). Both oracles charge
  /// their solver work here and answer Unknown without solving once a halt
  /// is observed — identically, preserving the decide() lockstep contract.
  util::ResourceGuard* guard = nullptr;
  /// Units the recovery layer has quarantined (not owned; frozen during the
  /// run). Control bits whose bit_unit_id is quarantined under "oracle.solve"
  /// are answered Unknown at the top of decide() in both oracles (lockstep);
  /// sat_redundancy_parallel also forwards the set to the sweep engine for
  /// its "sweep.region"/"sweep.iteration" filters.
  const util::QuarantineSet* quarantine = nullptr;
  /// Optional persistent cross-job decision memo (not owned; thread-safe).
  /// Consulted only by IncrementalOracle; see PortableDecisionMemo.
  PortableDecisionMemo* memo = nullptr;
};

struct SatRedundancyStats {
  size_t queries = 0;
  size_t decided_syntactic = 0; ///< bit was literally a known signal
  size_t decided_inference = 0;
  size_t decided_sim = 0;
  size_t decided_sat = 0;
  size_t dead_paths = 0;
  size_t skipped_too_large = 0;
  size_t gates_seen = 0;     ///< sub-graph gates before the relevance filter
  size_t gates_kept = 0;     ///< after the filter (paper: ~20% kept)
  size_t sim_filter_kills = 0; ///< queries settled at the simulation stage
  size_t sim_filter_half = 0;  ///< sim sweeps that early-exited (both polarities seen)
  size_t sat_calls = 0;        ///< individual solve() invocations
  size_t skipped_halt = 0;     ///< queries answered Unknown after a halt, unsolved
  size_t skipped_quarantine = 0; ///< queries answered Unknown for a quarantined target
  uint64_t solver_conflicts = 0;
  size_t portable_hits = 0;    ///< persistent-memo hits (IncrementalOracle only)
  size_t portable_misses = 0;  ///< memo consultations that fell through
  size_t portable_inserts = 0; ///< definitive verdicts recorded into the memo
  opt::MuxtreeStats walker;  ///< removal statistics from the shared walker
};

/// The oracle itself (exposed for unit tests and micro-benchmarks).
class InferenceOracle final : public opt::MuxtreeOracle {
public:
  explicit InferenceOracle(const SatRedundancyOptions& options) : options_(options) {}

  /// Legacy entry: builds a private NetlistIndex (direct oracle users).
  void begin_module(rtlil::Module& module) override;
  /// Index-sharing entry: binds the walker's incrementally-maintained index
  /// instead of rebuilding one per sweep.
  void begin_module(rtlil::Module& module, const rtlil::NetlistIndex& index) override;
  opt::CtrlDecision decide(rtlil::SigBit ctrl, const opt::KnownMap& known) override;

  const SatRedundancyStats& stats() const noexcept { return stats_; }

private:
  SatRedundancyOptions options_;
  SatRedundancyStats stats_;
  rtlil::Module* module_ = nullptr;
  const rtlil::NetlistIndex* index_ = nullptr;
  std::unique_ptr<rtlil::NetlistIndex> owned_index_;
  SubgraphScratch scratch_;
  std::vector<rtlil::SigBit> known_bits_;
};

/// Run the full §II pass on a module (walker + oracle). Pair with
/// opt_expr/opt_clean afterwards to sweep the disconnected logic.
SatRedundancyStats sat_redundancy(rtlil::Module& module,
                                  const SatRedundancyOptions& options = {});

/// §II pass over the parallel deterministic sweep engine: region-partitioned
/// walks with one thread-local IncrementalOracle per worker (each reset at
/// region boundaries, so results are bit-identical for every thread count).
/// threads = 0 picks one worker per hardware thread. max_iterations >= 0
/// caps the sweep's fixpoint iterations (the recovery layer's bisection
/// probes use it); -1 keeps the engine default.
SatRedundancyStats sat_redundancy_parallel(rtlil::Module& module,
                                           const SatRedundancyOptions& options,
                                           int threads,
                                           opt::DecisionTrace* trace = nullptr,
                                           opt::ParallelSweepStats* sweep_out = nullptr,
                                           int max_iterations = -1);

} // namespace smartly::core
