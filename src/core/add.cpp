#include "core/add.hpp"

#include "util/hashing.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace smartly::core {

namespace {

struct TableHash {
  size_t operator()(const std::vector<int>& t) const noexcept {
    uint64_t h = 0x1234;
    for (int v : t)
      h = hash_combine(h, static_cast<uint64_t>(static_cast<uint32_t>(v)));
    return h;
  }
};

class Builder {
public:
  Builder(int num_bits, bool greedy) : num_bits_(num_bits), greedy_(greedy) {}

  int build(const std::vector<int>& table, std::vector<int> free_bits) {
    // Constant sub-function -> terminal.
    if (std::all_of(table.begin(), table.end(), [&](int v) { return v == table[0]; }))
      return ~table[0];
    if (free_bits.empty())
      throw std::logic_error("ADD: non-constant table with no free bits");

    // Memo key includes the bit labels: identical tables reached with
    // different residual bit orders denote different functions of the
    // original selector.
    std::vector<int> memo_key = free_bits;
    memo_key.push_back(-1);
    memo_key.insert(memo_key.end(), table.begin(), table.end());
    auto memo_it = memo_.find(memo_key);
    if (memo_it != memo_.end())
      return memo_it->second;

    // Pick the split bit. `free_bits[i]` corresponds to stride 2^i in the
    // current table (bits are renumbered as the table shrinks).
    size_t pick = 0;
    if (greedy_) {
      size_t best_score = SIZE_MAX;
      for (size_t i = 0; i < free_bits.size(); ++i) {
        const auto [lo, hi] = cofactors(table, i);
        const size_t score = distinct(lo) + distinct(hi);
        if (score < best_score) {
          best_score = score;
          pick = i;
        }
      }
    }

    const auto [lo_t, hi_t] = cofactors(table, pick);
    const int var = free_bits[pick];
    std::vector<int> rest = free_bits;
    rest.erase(rest.begin() + static_cast<long>(pick));

    const int lo = build(lo_t, rest);
    const int hi = build(hi_t, rest);
    if (lo == hi) {
      memo_.emplace(std::move(memo_key), lo);
      return lo;
    }
    // Node-level sharing: identical (var, lo, hi) collapses.
    const uint64_t key = hash_combine(hash_combine(static_cast<uint64_t>(var),
                                                   static_cast<uint64_t>(static_cast<uint32_t>(lo))),
                                      static_cast<uint64_t>(static_cast<uint32_t>(hi)));
    auto node_it = unique_.find(key);
    if (node_it != unique_.end()) {
      memo_.emplace(std::move(memo_key), node_it->second);
      return node_it->second;
    }
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back({var, lo, hi});
    unique_.emplace(key, id);
    memo_.emplace(std::move(memo_key), id);
    return id;
  }

  AddResult finish(int root) {
    AddResult r;
    r.root = root;
    r.nodes = std::move(nodes_);
    return r;
  }

  int num_bits() const noexcept { return num_bits_; }

private:
  /// Split on the bit with stride 2^i: even/odd blocks of that stride.
  static std::pair<std::vector<int>, std::vector<int>> cofactors(const std::vector<int>& t,
                                                                 size_t i) {
    const size_t stride = size_t(1) << i;
    std::vector<int> lo, hi;
    lo.reserve(t.size() / 2);
    hi.reserve(t.size() / 2);
    for (size_t base = 0; base < t.size(); base += 2 * stride) {
      for (size_t k = 0; k < stride; ++k) {
        lo.push_back(t[base + k]);
        hi.push_back(t[base + stride + k]);
      }
    }
    return {std::move(lo), std::move(hi)};
  }

  static size_t distinct(const std::vector<int>& t) {
    std::unordered_set<int> s(t.begin(), t.end());
    return s.size();
  }

  int num_bits_;
  bool greedy_;
  std::vector<AddNode> nodes_;
  std::unordered_map<std::vector<int>, int, TableHash> memo_;
  std::unordered_map<uint64_t, int> unique_;
};

AddResult build_impl(const std::vector<int>& table, int num_bits, bool greedy) {
  if (table.size() != (size_t(1) << num_bits))
    throw std::invalid_argument("ADD: table size must be 2^num_bits");
  for (int v : table)
    if (v < 0)
      throw std::invalid_argument("ADD: terminal ids must be non-negative");
  Builder b(num_bits, greedy);
  std::vector<int> free_bits(static_cast<size_t>(num_bits));
  for (int i = 0; i < num_bits; ++i)
    free_bits[static_cast<size_t>(i)] = i;
  const int root = b.build(table, std::move(free_bits));
  return b.finish(root);
}

} // namespace

int AddResult::height() const {
  // Heights via memoized DFS (the DAG is small; recompute on demand).
  std::vector<int> h(nodes.size(), -1);
  struct Rec {
    const AddResult& add;
    std::vector<int>& h;
    int operator()(int ref) const {
      if (add_is_terminal(ref))
        return 0;
      if (h[static_cast<size_t>(ref)] >= 0)
        return h[static_cast<size_t>(ref)];
      const AddNode& n = add.nodes[static_cast<size_t>(ref)];
      const int v = 1 + std::max((*this)(n.lo), (*this)(n.hi));
      h[static_cast<size_t>(ref)] = v;
      return v;
    }
  };
  return Rec{*this, h}(root);
}

AddResult build_add(const std::vector<int>& table, int num_bits) {
  return build_impl(table, num_bits, /*greedy=*/true);
}

AddResult build_add_fixed_order(const std::vector<int>& table, int num_bits) {
  return build_impl(table, num_bits, /*greedy=*/false);
}

int add_eval(const AddResult& add, uint64_t sel_value) {
  int ref = add.root;
  while (!add_is_terminal(ref)) {
    const AddNode& n = add.nodes[static_cast<size_t>(ref)];
    ref = ((sel_value >> n.var) & 1) ? n.hi : n.lo;
  }
  return add_terminal_id(ref);
}

} // namespace smartly::core
