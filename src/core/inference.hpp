// Forward/backward inference rules over a sub-graph (paper §II, Table I).
//
// "Considering that the logical relationships are often not overly complex …
// straightforward inferences can help reduce unknown signals. smaRTLy
// applies the inference rules to the known value signals. If a condition
// matches, the corresponding signal in the result becomes a new known value
// signal."
//
// Table I gives the rules for OR cells; this engine implements them plus the
// analogous rules for and/not/xor/xnor/mux/eq/logic_* cells, iterated with a
// worklist until fixpoint. Everything is propositional reasoning on a
// {0, 1, unknown} lattice over canonical SigBits — no search, so it is cheap
// and it runs before any simulation or SAT query.
#pragma once

#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"

#include <optional>
#include <unordered_map>
#include <vector>

namespace smartly::core {

class InferenceEngine {
public:
  /// An empty engine; call reset() before use.
  InferenceEngine() = default;

  /// `cells` is the sub-graph; `sigmap` must be the module's canonicalizer.
  InferenceEngine(const std::vector<rtlil::Cell*>& cells, const rtlil::SigMap& sigmap) {
    reset(cells, sigmap);
  }

  /// Re-target the engine at a new sub-graph, clearing all derived state
  /// (`values_`, `worklist_`, `touching_`) without releasing the hash-table
  /// allocations. Lets an oracle keep one engine per module instead of
  /// constructing one per query — construction cost is pure malloc traffic.
  void reset(const std::vector<rtlil::Cell*>& cells, const rtlil::SigMap& sigmap);

  /// Seed a known value (canonical bit). Returns false on contradiction.
  bool assume(rtlil::SigBit bit, bool value);

  /// Run rules to fixpoint. Returns false if a contradiction was derived
  /// (the path condition is unsatisfiable).
  bool propagate();

  /// Value of a canonical bit, if determined.
  std::optional<bool> value(rtlil::SigBit bit) const;

  size_t num_known() const noexcept { return values_.size(); }

private:
  bool set_value(rtlil::SigBit bit, bool value);
  bool infer_cell(rtlil::Cell* cell);

  std::optional<bool> bit_value(const rtlil::SigBit& raw) const;

  const rtlil::SigMap* sigmap_ = nullptr;
  std::vector<rtlil::Cell*> cells_;
  std::unordered_map<rtlil::SigBit, std::vector<rtlil::Cell*>> touching_; ///< bit -> cells
  std::unordered_map<rtlil::SigBit, bool> values_;
  std::vector<rtlil::Cell*> worklist_;
  std::unordered_map<rtlil::Cell*, bool> in_worklist_;
  bool contradiction_ = false;
};

} // namespace smartly::core
