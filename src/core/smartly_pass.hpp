// The combined smaRTLy pass and the experiment flows.
//
// Paper §IV: the experiment replaces Yosys's opt_muxtree with smaRTLy inside
// an otherwise identical pipeline, then converts to AIG and counts AND gates.
// Table III additionally reports each engine in isolation (SAT / Rebuild).
#pragma once

#include "core/mux_restructure.hpp"
#include "core/sat_redundancy.hpp"
#include "rewrite/rewrite_engine.hpp"
#include "rtlil/module.hpp"
#include "sweep/fraig_engine.hpp"
#include "util/budget.hpp"
#include "util/recovery.hpp"

namespace smartly::core {

struct SmartlyOptions {
  bool enable_sat = true;      ///< §II SAT-based redundancy elimination
  bool enable_rebuild = true;  ///< §III muxtree restructuring
  /// Run the SAT-sweeping (fraig) stage after the muxtree passes: removes
  /// general combinational redundancy (duplicate cones, complement pairs,
  /// constant nodes) that the per-muxtree oracle cannot see. Off by default
  /// so the paper-reproduction flows keep their historical statistics.
  bool enable_fraig = false;
  /// Run the deep-optimization convergence loop (fraig -> rewrite -> fraig,
  /// opt/pipeline's fraig_rewrite_loop) after the muxtree passes: the
  /// DAG-aware cut-rewriting engine restructures 4-feasible cones through
  /// the NPN replacement library, and the surrounding fraig stages harvest
  /// the merges it exposes. Subsumes enable_fraig when set.
  bool enable_rewrite = false;
  /// Worker threads for the §II parallel sweep engine, the fraig engine and
  /// the rewrite engine (0 = one per hardware thread). All engines are
  /// deterministic: netlist output and statistics are bit-identical for
  /// every value of this knob.
  int threads = 0;
  SatRedundancyOptions sat;
  MuxRestructureOptions rebuild;
  sweep::FraigOptions fraig;         ///< fraig.threads is overridden by `threads`
  rewrite::RewriteOptions rewrite;   ///< rewrite.threads is overridden by `threads`
  /// Run-wide resource budgets (conflicts/propagations/growth/deadline). When
  /// any is set — or `cancel` is non-null — the pass constructs one
  /// ResourceGuard and threads it through every engine; on exhaustion the
  /// engines degrade (stop taking new merges/rewrites, flush journals in
  /// canonical order) and the pass still returns a CEC-equivalent netlist.
  /// Deterministic budgets preserve thread-count byte-identity; the deadline
  /// and the cancel token are the documented nondeterministic halt sources.
  util::ResourceBudgets budgets;
  util::CancelToken* cancel = nullptr; ///< optional cooperative cancellation (not owned)
  /// Transactional recovery (opt/transaction.hpp). When enabled, every stage
  /// of the pass (rebuild / sweep / muxtree / fraig / rewrite — and the
  /// coarse-opt stages of smartly_flow) runs inside a StageTransaction:
  /// failures roll the module back byte-identically, quarantine the
  /// offending unit, optionally emit a repro bundle, and retry; after
  /// max_retries the stage is skipped. The pass never aborts the job.
  util::RecoveryOptions recovery;
};

struct SmartlyStats {
  SatRedundancyStats sat;
  MuxRestructureStats rebuild;
  /// §II sweep-engine detail (regions, dispatches). threads_used reflects
  /// the machine and is the one field excluded from determinism checks.
  opt::ParallelSweepStats sweep;
  sweep::FraigStats fraig;        ///< zeros unless enable_fraig/enable_rewrite
  rewrite::RewriteStats rewrite;  ///< zeros unless enable_rewrite
  /// What the run's ResourceGuard charged and whether (and why) it halted.
  /// All-zeros when no budgets/cancel were configured.
  util::ResourceReport resource;
  /// Rollbacks, retries, quarantined units, skipped stages, bundles written.
  /// All-zeros when recovery was not enabled.
  util::RecoveryStats recovery;
};

/// Run smaRTLy on an already-coarse-optimized module (the pass itself, the
/// analogue of `opt_muxtree`). Restructuring runs first: "Rebuild
/// optimization can reduce the height of muxtrees and simplify the control
/// port, which will make the sub-graph smaller in SAT optimization."
SmartlyStats smartly_pass(rtlil::Module& module, const SmartlyOptions& options = {});

/// Full experiment flow: coarse opts, smartly_pass, post cleanup — the
/// drop-in counterpart of opt::yosys_flow.
SmartlyStats smartly_flow(rtlil::Module& module, const SmartlyOptions& options = {});

} // namespace smartly::core
