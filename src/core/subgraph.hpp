// Sub-graph extraction for SAT-based redundancy elimination (paper §II).
//
// "SmaRTLy begins by constructing a sub-graph during the traversal of the
// muxtree. When a new MUX is encountered, all logical gates within a
// specified distance k from the control port are incorporated. … To keep the
// sub-graph manageable, smaRTLy only adds potential signals whose values
// might be affected by known signals" (Theorems II.1/II.2). Sequential cells
// are excluded so the sub-graph stays a DAG.
#pragma once

#include "rtlil/module.hpp"
#include "rtlil/topo.hpp"

#include <unordered_set>
#include <vector>

namespace smartly::core {

struct SubgraphOptions {
  int depth = 4; ///< distance k from the control port / known signals
  /// Apply the Theorem II.1 relevance filter (ablatable; the paper reports
  /// it dismisses ~80% of the gates in the sub-graph).
  bool relevance_filter = true;
};

struct Subgraph {
  std::vector<rtlil::Cell*> cells;           ///< combinational, topo-closed subset
  std::vector<rtlil::SigBit> boundary;       ///< canonical bits read but not driven inside
  size_t gates_before_filter = 0;            ///< cells gathered by the distance-k BFS
};

/// Extract the sub-graph around `target` (a control-port bit) and the
/// already-known signals. All bits must be canonical w.r.t. `index.sigmap()`.
Subgraph extract_subgraph(const rtlil::Module& module, const rtlil::NetlistIndex& index,
                          rtlil::SigBit target, const std::vector<rtlil::SigBit>& known,
                          const SubgraphOptions& options);

} // namespace smartly::core
