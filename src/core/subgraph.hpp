// Sub-graph extraction for SAT-based redundancy elimination (paper §II).
//
// "SmaRTLy begins by constructing a sub-graph during the traversal of the
// muxtree. When a new MUX is encountered, all logical gates within a
// specified distance k from the control port are incorporated. … To keep the
// sub-graph manageable, smaRTLy only adds potential signals whose values
// might be affected by known signals" (Theorems II.1/II.2). Sequential cells
// are excluded so the sub-graph stays a DAG.
#pragma once

#include "rtlil/module.hpp"
#include "rtlil/topo.hpp"
#include "util/hashing.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace smartly::core {

struct SubgraphOptions {
  int depth = 4; ///< distance k from the control port / known signals
  /// Apply the Theorem II.1 relevance filter (ablatable; the paper reports
  /// it dismisses ~80% of the gates in the sub-graph).
  bool relevance_filter = true;
};

struct Subgraph {
  std::vector<rtlil::Cell*> cells;           ///< combinational, topo-closed subset
  std::vector<rtlil::SigBit> boundary;       ///< canonical bits read but not driven inside
  std::vector<rtlil::Cell*> ball;            ///< the full distance-k BFS ball
  size_t gates_before_filter = 0;            ///< cells gathered by the distance-k BFS (= ball size)

  /// Order-insensitive structural fingerprint of the cell set: cell types,
  /// parameters, and every port's canonical bits. Two sub-graphs fingerprint
  /// equal iff they contain content-identical cells over the same wires, so
  /// the fingerprint content-addresses derived artifacts (AIG encodings, CNF
  /// clause groups) across queries — no explicit invalidation needed: a
  /// mutated cell changes its content and therefore the key.
  Hash128 fingerprint(const rtlil::SigMap& sigmap) const;
};

/// Structural hash of one cell under `sigmap` (type, params, canonical bits
/// of every connected port, outputs included).
uint64_t cell_content_hash(const rtlil::Cell& cell, const rtlil::SigMap& sigmap);

/// Extract the sub-graph around `target` (a control-port bit) and the
/// already-known signals. All bits must be canonical w.r.t. `index.sigmap()`.
Subgraph extract_subgraph(const rtlil::Module& module, const rtlil::NetlistIndex& index,
                          rtlil::SigBit target, const std::vector<rtlil::SigBit>& known,
                          const SubgraphOptions& options);

/// Reusable scratch space for extract_subgraph: clears hash-table buckets
/// instead of reallocating them. The §II oracle issues thousands of
/// extractions per module; per-query container construction is measurable.
/// Produces a Subgraph whose cell *set*, boundary set, and counters are
/// identical to extract_subgraph's (vector order may differ — no consumer
/// depends on it).
class SubgraphScratch {
public:
  Subgraph extract(const rtlil::Module& module, const rtlil::NetlistIndex& index,
                   rtlil::SigBit target, const std::vector<rtlil::SigBit>& known,
                   const SubgraphOptions& options);

private:
  std::unordered_map<rtlil::Cell*, int> depth_;
  std::deque<rtlil::Cell*> queue_;
  std::vector<rtlil::Cell*> seeds_;
  std::vector<rtlil::Cell*> next_;
  std::unordered_set<rtlil::Cell*> kept_;
  std::deque<rtlil::SigBit> bitq_;
  std::unordered_set<rtlil::SigBit> seen_bits_;
  std::unordered_set<rtlil::SigBit> driven_;
  std::unordered_set<rtlil::SigBit> boundary_;
};

} // namespace smartly::core
