#include "core/incremental_oracle.hpp"

#include "aig/cnf.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/packed_sim.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

#include <algorithm>

namespace smartly::core {

using opt::CtrlDecision;
using opt::KnownMap;
using rtlil::Cell;
using rtlil::SigBit;

IncrementalOracle::IncrementalOracle(const IncrementalOracleOptions& options)
    : options_(options), solver_(std::make_unique<sat::Solver>()) {
  if (options_.base.guard != nullptr && options_.base.guard->wants_interrupts())
    solver_->set_interrupt_check([g = options_.base.guard] { return g->poll(); });
  // Every decision-affecting knob is folded into the portable-memo keys:
  // entries recorded under one configuration must never answer queries made
  // under another (e.g. a wider sim threshold flips sim-vs-SAT routing).
  uint64_t salt = hash_mix(0x736d6172746c79ULL); // "smartly"
  salt = hash_combine(salt, static_cast<uint64_t>(options_.base.subgraph.depth));
  salt = hash_combine(salt, options_.base.subgraph.relevance_filter ? 1 : 0);
  salt = hash_combine(salt, static_cast<uint64_t>(options_.base.sim_max_inputs));
  salt = hash_combine(salt, static_cast<uint64_t>(options_.base.sat_max_inputs));
  salt = hash_combine(salt, static_cast<uint64_t>(options_.base.sat_conflict_budget));
  salt = hash_combine(salt, options_.base.use_inference ? 1 : 0);
  salt = hash_combine(salt, options_.base.use_sat ? 1 : 0);
  options_salt_ = salt;
}

IncrementalOracle::~IncrementalOracle() = default;

void IncrementalOracle::full_reset() {
  decision_cache_.clear();
  live_decisions_.clear();
  cell_to_queries_.clear();
  bit_to_queries_.clear();
  pending_removed_.clear();
  pending_removed_bits_.clear();
  cone_cache_.clear();
  cell_to_cones_.clear();
  patterns_.clear();
  solver_ = std::make_unique<sat::Solver>();
  if (options_.base.guard != nullptr && options_.base.guard->wants_interrupts())
    solver_->set_interrupt_check([g = options_.base.guard] { return g->poll(); });
  ++solver_generation_;
}

void IncrementalOracle::flush_pending_removed() {
  // Cells removed last sweep only vanished (and their output classes only
  // merged) when the sweep's pending connects were applied — after queries
  // may have re-cached decisions depending on them. Kill those now.
  if (!pending_removed_.empty()) {
    std::vector<Cell*> removed;
    removed.swap(pending_removed_);
    for (Cell* c : removed)
      invalidate_cell(c);
  }
  // The applied connects also rewired the removed cells' output classes: a
  // decision whose cone read such a bit as a *free input* (driver outside the
  // ball) is stale even though no ball cell changed. Invalidate by boundary.
  if (!pending_removed_bits_.empty()) {
    std::vector<SigBit> bits;
    bits.swap(pending_removed_bits_);
    for (const SigBit& bit : bits) {
      if (auto it = bit_to_queries_.find(bit); it != bit_to_queries_.end()) {
        for (const uint64_t id : it->second)
          invalidate_decision(id);
        bit_to_queries_.erase(it);
      }
    }
  }
}

void IncrementalOracle::begin_module(rtlil::Module& module) {
  if (module_ != &module) {
    full_reset();
    module_ = &module;
  }
  owned_index_ = std::make_unique<rtlil::NetlistIndex>(module);
  index_ = owned_index_.get();
  flush_pending_removed();
}

void IncrementalOracle::begin_module(rtlil::Module& module, const rtlil::NetlistIndex& index) {
  if (module_ != &module) {
    full_reset();
    module_ = &module;
  }
  owned_index_.reset();
  index_ = &index;
  flush_pending_removed();
}

void IncrementalOracle::invalidate_decision(uint64_t id) {
  auto it = live_decisions_.find(id);
  if (it == live_decisions_.end())
    return; // already invalidated through the other support index
  decision_cache_.erase(*it->second);
  live_decisions_.erase(it);
}

void IncrementalOracle::reset_solver() {
  if (solver_)
    ++stats_.engine_resets;
  solver_ = std::make_unique<sat::Solver>();
  if (options_.base.guard != nullptr && options_.base.guard->wants_interrupts())
    solver_->set_interrupt_check([g = options_.base.guard] { return g->poll(); });
  ++solver_generation_; // generation tag: all existing clause groups are dead
}

void IncrementalOracle::invalidate_cell(Cell* cell) {
  // Decisions are invalidated by support: a cached answer can only change if
  // a cell inside its extraction ball changed. (The walker only ever shrinks
  // cell ports, so adjacency never grows — a query whose ball excluded this
  // cell would extract the same ball, and therefore the same answer, today.)
  if (auto it = cell_to_queries_.find(cell); it != cell_to_queries_.end()) {
    for (const uint64_t id : it->second)
      invalidate_decision(id);
    cell_to_queries_.erase(it);
  }

  // Cone entries are content-addressed and would stop matching on their own;
  // evicting them eagerly reclaims memory and retires their clause groups so
  // the persistent solver stops carrying constraints of dead structure.
  auto it = cell_to_cones_.find(cell);
  if (it == cell_to_cones_.end())
    return;
  for (const Hash128& key : it->second) {
    auto ce = cone_cache_.find(key);
    if (ce == cone_cache_.end())
      continue;
    ConeEntry& entry = ce->second;
    if (entry.encoded && entry.generation == solver_generation_ && solver_) {
      solver_->add_clause(~entry.activation);
      ++stats_.dropped_constraints;
    }
    cone_cache_.erase(ce);
  }
  cell_to_cones_.erase(it);
}

void IncrementalOracle::notify_external_rewire(const std::vector<SigBit>& bits) {
  for (const SigBit& bit : bits) {
    if (auto it = bit_to_queries_.find(bit); it != bit_to_queries_.end()) {
      for (const uint64_t id : it->second)
        invalidate_decision(id);
      bit_to_queries_.erase(it);
    }
  }
}

void IncrementalOracle::notify_cell_mutated(Cell* cell) {
  ++stats_.cells_remapped;
  invalidate_cell(cell);
}

void IncrementalOracle::notify_cell_removed(Cell* cell) {
  ++stats_.cells_remapped;
  invalidate_cell(cell);
  // The cell is still in the module until sweep end; invalidate again at the
  // sweep boundary so nothing cached in the meantime survives its actual
  // disappearance (and the output-class merge the pending connect applies).
  pending_removed_.push_back(cell);
  if (index_)
    for (const SigBit& raw : cell->port(cell->output_port())) {
      const SigBit bit = index_->sigmap()(raw);
      if (bit.is_wire())
        pending_removed_bits_.push_back(bit);
    }
}

IncrementalOracle::ConeEntry& IncrementalOracle::cone_for(
    const Subgraph& sg, SigBit ctrl, const std::vector<SigBit>& known_bits) {
  Hash128 key = sg.fingerprint(index_->sigmap());
  key = hash128_combine(key, ctrl.hash());
  for (const SigBit& kb : known_bits)
    key = hash128_combine(key, kb.hash());

  auto it = cone_cache_.find(key);
  if (it != cone_cache_.end()) {
    ++stats_.cone_cache_hits;
    static obs::Counter& hits = obs::counter("oracle.cache_hits.cone");
    hits.add();
    return it->second;
  }
  ++stats_.cone_cache_misses;

  if (cone_cache_.size() >= options_.cone_cache_max) {
    // Wholesale reset: cheaper and safer than LRU bookkeeping at this size,
    // and it lets the solver shed the retired groups' variables too.
    cone_cache_.clear();
    cell_to_cones_.clear();
    reset_solver();
  }

  ConeEntry entry;
  std::vector<SigBit> roots;
  roots.reserve(known_bits.size() + 1);
  roots.push_back(ctrl);
  for (const SigBit& kb : known_bits)
    roots.push_back(kb);
  entry.cone = aig::aigmap_cone(*module_, *index_, sg.cells, roots);
  entry.cells = sg.cells;

  // AIG input index -> module bit, for translating recycled patterns and
  // harvesting SAT models.
  std::unordered_map<uint32_t, size_t> node_to_input;
  const auto& inputs = entry.cone.aig.inputs();
  for (size_t i = 0; i < inputs.size(); ++i)
    node_to_input.emplace(inputs[i], i);
  entry.input_bits.assign(inputs.size(), SigBit());
  for (const auto& [bit, lit] : entry.cone.bits) {
    if (aig::lit_compl(lit))
      continue;
    auto in = node_to_input.find(aig::lit_node(lit));
    if (in != node_to_input.end())
      entry.input_bits[in->second] = bit;
  }

  auto [pos, inserted] = cone_cache_.emplace(key, std::move(entry));
  (void)inserted;
  for (Cell* c : pos->second.cells)
    cell_to_cones_[c].push_back(key);
  return pos->second;
}

void IncrementalOracle::ensure_encoded(ConeEntry& entry) {
  if (entry.encoded && entry.generation == solver_generation_)
    return;
  if (solver_->num_vars() > options_.solver_var_budget)
    reset_solver();
  entry.activation = sat::mk_lit(solver_->new_var());
  aig::CnfEncoder enc(*solver_);
  enc.encode(entry.cone.aig, entry.activation);
  entry.vars = enc.vars();
  entry.encoded = true;
  entry.generation = solver_generation_;
}

void IncrementalOracle::build_replay_candidates(const ConeEntry& entry) {
  replay_.clear();
  if (patterns_.empty() || entry.input_bits.empty())
    return;
  const size_t n_inputs = entry.input_bits.size();
  // Newest first: recent witnesses come from structurally nearby queries.
  for (auto p = patterns_.rbegin(); p != patterns_.rend(); ++p) {
    if (replay_.size() >= options_.replay_max)
      break;
    std::vector<uint8_t> values(n_inputs, 0);
    size_t covered = 0;
    for (size_t i = 0; i < n_inputs; ++i) {
      const SigBit& bit = entry.input_bits[i];
      if (!bit.is_wire())
        continue;
      auto it = p->find(bit);
      if (it == p->end())
        continue;
      values[i] = it->second ? 1 : 0;
      ++covered;
    }
    // A pattern sharing less than half the cone's inputs is noise: replaying
    // it costs simulation time with little chance of being consistent.
    if (covered * 2 < n_inputs)
      continue;
    replay_.push_back(std::move(values));
  }
}

void IncrementalOracle::remember_pattern(const ConeEntry& entry,
                                         const std::vector<uint8_t>& input_values) {
  std::unordered_map<SigBit, bool> pattern;
  const size_t n = std::min(entry.input_bits.size(), input_values.size());
  for (size_t i = 0; i < n; ++i) {
    const SigBit& bit = entry.input_bits[i];
    if (bit.is_wire())
      pattern.emplace(bit, input_values[i] != 0);
  }
  if (pattern.empty())
    return;
  for (const auto& existing : patterns_)
    if (existing == pattern)
      return;
  patterns_.push_back(std::move(pattern));
  if (patterns_.size() > options_.pattern_store_max)
    patterns_.pop_front();
}

namespace {

/// Canonical, process-portable fingerprint of one oracle query: the cone's
/// structure with every bit renamed to a dense first-appearance index, plus
/// the target's and the known bits' roles and values. Pointer-free and
/// name-free (names only fix the cell visiting order), so the same cone in
/// another process — or another design — produces the same key, and two
/// queries with equal keys are isomorphic and provably share their verdict.
Hash128 portable_query_key(const Subgraph& sg, const rtlil::SigMap& sigmap, SigBit ctrl,
                           const std::vector<std::pair<SigBit, bool>>& known,
                           uint64_t salt) {
  // Visit cells in name order: SubgraphScratch's cell order is hash-table
  // noise, and the key must not depend on it. Names are unique per module.
  std::vector<const Cell*> cells(sg.cells.begin(), sg.cells.end());
  std::sort(cells.begin(), cells.end(),
            [](const Cell* a, const Cell* b) { return a->name() < b->name(); });

  std::unordered_map<SigBit, uint64_t> dense;
  auto id_of = [&](const SigBit& raw) -> uint64_t {
    const SigBit bit = sigmap(raw);
    if (!bit.is_wire()) // constants encode by value, disjoint from dense ids
      return 0x4000000000000000ULL + static_cast<uint64_t>(bit.data);
    return dense.emplace(bit, dense.size()).first->second;
  };

  Hash128 h = hash128_combine({salt, hash_mix(salt)}, cells.size());
  for (const Cell* c : cells) {
    const rtlil::CellParams& p = c->params();
    uint64_t ch = hash_combine(0x9d5u, static_cast<uint64_t>(c->type()));
    ch = hash_combine(ch, static_cast<uint64_t>(p.a_width));
    ch = hash_combine(ch, static_cast<uint64_t>(p.b_width));
    ch = hash_combine(ch, static_cast<uint64_t>(p.y_width));
    ch = hash_combine(ch, static_cast<uint64_t>(p.width));
    ch = hash_combine(ch, static_cast<uint64_t>(p.s_width));
    ch = hash_combine(ch, (p.a_signed ? 2u : 0u) | (p.b_signed ? 1u : 0u));
    for (int pi = 0; pi < rtlil::kPortCount; ++pi) {
      const rtlil::Port port = static_cast<rtlil::Port>(pi);
      if (!c->has_port(port))
        continue;
      ch = hash_combine(ch, 0x1000u + static_cast<uint64_t>(pi));
      for (const SigBit& raw : c->port(port))
        ch = hash_combine(ch, id_of(raw));
    }
    h = hash128_combine(h, ch);
  }

  h = hash128_combine(h, 0xC7A1u); // role separator
  h = hash128_combine(h, id_of(ctrl));
  // Pair values with dense ids and sort by id: the pairing survives any
  // known-map iteration order, and ids are unambiguous within one key.
  std::vector<std::pair<uint64_t, bool>> kv;
  kv.reserve(known.size());
  for (const auto& [bit, value] : known)
    kv.emplace_back(id_of(bit), value);
  std::sort(kv.begin(), kv.end());
  for (const auto& [id, value] : kv)
    h = hash128_combine(h, id * 2 + (value ? 1 : 0));
  return h;
}

} // namespace

CtrlDecision IncrementalOracle::finish(const QueryKey& key, const Subgraph& sg,
                                       CtrlDecision decision, bool definitive_unknown) {
  // Record deterministic verdicts into the persistent memo: Zero/One/DeadPath
  // always (pure functions of the cone + constraints), Unknown only when the
  // caller proved it definitively — a guard-halt, fault-injection, or
  // budget-exhausted Unknown could resolve on a retry and must be recomputed.
  if (pending_portable_) {
    pending_portable_ = false;
    if (decision != CtrlDecision::Unknown || definitive_unknown) {
      options_.base.memo->insert(portable_key_, decision);
      ++stats_.portable_inserts;
    }
  }
  if (decision_cache_.size() >= options_.decision_cache_max) {
    // Wholesale flush: the support indexes hold ids into this cache, so they
    // go with it (their stale ids would otherwise pin dead memory forever).
    decision_cache_.clear();
    live_decisions_.clear();
    cell_to_queries_.clear();
    bit_to_queries_.clear();
  }
  const uint64_t id = next_decision_id_++;
  auto [pos, inserted] = decision_cache_.emplace(key, DecisionEntry{decision, id});
  if (!inserted)
    return decision; // lost a race with itself: key already cached this sweep
  live_decisions_.emplace(id, &pos->first);
  for (Cell* c : sg.ball)
    cell_to_queries_[c].push_back(id);
  for (const SigBit& bit : sg.boundary)
    bit_to_queries_[bit].push_back(id);
  return decision;
}

CtrlDecision IncrementalOracle::decide(SigBit ctrl, const KnownMap& known) {
  ++stats_.queries;

  // Quarantined target: answer Unknown before any cache interaction,
  // mirroring the top of InferenceOracle::decide exactly (the lockstep
  // contract). The same unit keys the "oracle.solve" fault site below.
  const uint64_t unit =
      ctrl.is_wire() ? util::bit_unit_id(ctrl.wire->name(), ctrl.offset) : 1;
  if (options_.base.quarantine != nullptr &&
      options_.base.quarantine->contains("oracle.solve", unit)) {
    ++stats_.skipped_quarantine;
    return CtrlDecision::Unknown;
  }

  // Stage 1: syntactic (identical to the from-scratch oracle).
  if (auto it = known.find(ctrl); it != known.end()) {
    ++stats_.decided_syntactic;
    return it->second ? CtrlDecision::One : CtrlDecision::Zero;
  }
  if (known.empty())
    return CtrlDecision::Unknown; // no path condition: nothing to infer from

  // Stage 1b: exact-repeat lookup. Only populated while the module is
  // provably unchanged (see invalidate_cell/begin_module), so a hit replays
  // a decision the full pipeline made on this very module state.
  QueryKey key;
  key.target = ctrl;
  key.known.assign(known.begin(), known.end());
  std::sort(key.known.begin(), key.known.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (auto it = decision_cache_.find(key); it != decision_cache_.end()) {
    ++stats_.decision_cache_hits;
    static obs::Counter& hits = obs::counter("oracle.cache_hits.decision");
    hits.add();
    return it->second.decision;
  }

  std::vector<SigBit> known_bits;
  known_bits.reserve(key.known.size());
  for (const auto& [bit, value] : key.known) {
    (void)value;
    known_bits.push_back(bit);
  }

  // Stage 2: bounded sub-graph (same extraction, allocation-reusing scratch).
  const Subgraph sg =
      subgraph_scratch_.extract(*module_, *index_, ctrl, known_bits, options_.base.subgraph);
  stats_.gates_seen += sg.gates_before_filter;
  stats_.gates_kept += sg.cells.size();
  if (sg.cells.empty())
    return finish(key, sg, CtrlDecision::Unknown);

  // Stage 2b: persistent cross-job memo (service warm cache). The canonical
  // key renames every cone bit to a dense index, so a hit means some earlier
  // run — possibly another process — drove an isomorphic cone through the
  // full pipeline under identical options and got a definitive verdict.
  if (options_.base.memo != nullptr) {
    portable_key_ = portable_query_key(sg, index_->sigmap(), ctrl, key.known, options_salt_);
    CtrlDecision memoized;
    if (options_.base.memo->lookup(portable_key_, &memoized)) {
      ++stats_.portable_hits;
      static obs::Counter& hits = obs::counter("oracle.memo_hits");
      hits.add();
      if (memoized == CtrlDecision::DeadPath)
        ++stats_.dead_paths;
      return finish(key, sg, memoized);
    }
    ++stats_.portable_misses;
    static obs::Counter& misses = obs::counter("oracle.memo_misses");
    misses.add();
    pending_portable_ = true;
  }

  // Stage 3: Table I inference rules, one engine reused across queries.
  if (options_.base.use_inference) {
    engine_.reset(sg.cells, index_->sigmap());
    bool ok = true;
    for (const auto& [bit, value] : key.known)
      ok = ok && engine_.assume(bit, value);
    ok = ok && engine_.propagate();
    if (!ok) {
      ++stats_.dead_paths;
      return finish(key, sg, CtrlDecision::DeadPath);
    }
    if (auto v = engine_.value(ctrl)) {
      ++stats_.decided_inference;
      return finish(key, sg, *v ? CtrlDecision::One : CtrlDecision::Zero);
    }
  }
  if (!options_.base.use_sat)
    return finish(key, sg, CtrlDecision::Unknown, /*definitive_unknown=*/true);

  // Stage 4: AIG cone, served from the content-addressed cache.
  ConeEntry& entry = cone_for(sg, ctrl, known_bits);
  auto aig_lit_of = [&](const SigBit& bit) -> std::optional<aig::Lit> {
    auto it = entry.cone.bits.find(bit);
    if (it == entry.cone.bits.end())
      return std::nullopt;
    return it->second;
  };
  const auto target_lit = aig_lit_of(ctrl);
  if (!target_lit)
    return finish(key, sg, CtrlDecision::Unknown, /*definitive_unknown=*/true);

  std::vector<std::pair<aig::Lit, bool>> constraints;
  for (const auto& [bit, value] : key.known) {
    if (auto l = aig_lit_of(bit))
      constraints.emplace_back(*l, value);
    // Known bits outside the sub-graph cannot be asserted; dropping them is
    // sound (fewer constraints can only weaken deductions, never falsify).
  }

  const int n_inputs = static_cast<int>(entry.cone.aig.num_inputs());

  // Stage 4a: simulation. Sim-sized cones take the baseline's exhaustive
  // sweep unchanged — replay would only add a simulation batch to a stage
  // that is already cheap and always conclusive. SAT-sized cones replay the
  // recycled candidates instead of enumerating: a verified both-polarity
  // pair proves "not forced" without any solver call, and a single verified
  // witness still halves the SAT protocol below.
  const bool sim_sized = n_inputs <= options_.base.sim_max_inputs;
  sim::SimOptions sim_opts;
  sim_opts.max_free_inputs = options_.base.sim_max_inputs;
  sim_opts.enumerate = sim_sized;
  sim_opts.scratch = &sim_scratch_;
  if (!sim_sized) {
    build_replay_candidates(entry);
    sim_opts.recycled = replay_.empty() ? nullptr : &replay_;
    // has_witness0/1 are enough for the SAT-call skip below; the witness
    // *vectors* would only repeat patterns already in the recycling store,
    // so leave capture_witnesses off and skip their allocation.
  }
  const sim::SimResult sr =
      sim::exhaustive_forced_ex(entry.cone.aig, constraints, *target_lit, sim_opts);
  stats_.patterns_recycled += sr.patterns_recycled;

  if (sim_sized) {
    ++stats_.sim_filter_kills;
    if (sr.early_exit)
      ++stats_.sim_filter_half;
    switch (sr.forced) {
    case sim::Forced::Zero: ++stats_.decided_sim; return finish(key, sg, CtrlDecision::Zero);
    case sim::Forced::One: ++stats_.decided_sim; return finish(key, sg, CtrlDecision::One);
    case sim::Forced::Contradiction:
      ++stats_.dead_paths;
      return finish(key, sg, CtrlDecision::DeadPath);
    case sim::Forced::None:
      // Exhaustive enumeration proved "not forced": a definitive verdict.
      return finish(key, sg, CtrlDecision::Unknown, /*definitive_unknown=*/true);
    }
  }
  if (sr.recycled_decisive) {
    // Both polarities witnessed on the current cone: the from-scratch oracle
    // would reach Unknown through SAT(s=0)/SAT(s=1) both satisfiable. The
    // witnesses were verified against this very cone, so "not forced" is
    // proven, not history-dependent — memoizable.
    ++stats_.sim_filter_kills;
    ++stats_.sim_filter_half;
    return finish(key, sg, CtrlDecision::Unknown, /*definitive_unknown=*/true);
  }

  // Stage 4b: SAT. Same size threshold as the baseline. (The threshold is in
  // the key salt, so the skip verdict is deterministic and memoizable.)
  if (n_inputs > options_.base.sat_max_inputs) {
    ++stats_.skipped_too_large;
    return finish(key, sg, CtrlDecision::Unknown, /*definitive_unknown=*/true);
  }

  // Resource-governed skip, mirroring InferenceOracle::decide exactly (the
  // lockstep contract): a halt observed here only comes from the
  // nondeterministic sources or fault injection, and degrades to Unknown.
  if ((options_.base.guard != nullptr && options_.base.guard->poll()) ||
      util::fault_unknown("oracle.solve", unit)) {
    ++stats_.skipped_halt;
    if (options_.base.guard != nullptr)
      options_.base.guard->note_skipped_solves();
    return finish(key, sg, CtrlDecision::Unknown);
  }

  // SAT stage: rare relative to the cache/sim stages above, so one span per
  // solved query is cheap; the span covers encode + both polarity solves.
  const obs::Span solve_span("oracle", "oracle.solve", "unit", unit);
  static obs::Counter& m_solves = obs::counter("oracle.solves");
  m_solves.add();
  ensure_encoded(entry);
  auto sat_lit = [&](aig::Lit l) {
    return sat::mk_lit(entry.vars[aig::lit_node(l)], aig::lit_compl(l));
  };

  std::vector<sat::Lit> assumptions;
  assumptions.push_back(entry.activation);
  for (const auto& [l, v] : constraints)
    assumptions.push_back(v ? sat_lit(l) : ~sat_lit(l));

  // The solver's conflict budget is cumulative; re-arm it per query so the
  // persistent engine gets the same per-query allowance as a fresh one.
  // Negative means unlimited and must stay the bare sentinel: adding it to
  // the conflict count would instead produce an already-exhausted budget.
  solver_->set_conflict_budget(options_.base.sat_conflict_budget < 0
                                   ? options_.base.sat_conflict_budget
                                   : static_cast<int64_t>(solver_->stats().conflicts) +
                                         options_.base.sat_conflict_budget);

  uint64_t conflicts_seen = solver_->stats().conflicts;
  uint64_t propagations_seen = solver_->stats().propagations;
  auto solve_with = [&](bool target_value) {
    ++stats_.sat_calls;
    std::vector<sat::Lit> a = assumptions;
    a.push_back(target_value ? sat_lit(*target_lit) : ~sat_lit(*target_lit));
    const sat::Result r = solver_->solve(a);
    stats_.solver_conflicts += solver_->stats().conflicts - conflicts_seen;
    if (options_.base.guard != nullptr) {
      options_.base.guard->charge_conflicts(solver_->stats().conflicts - conflicts_seen);
      options_.base.guard->charge_propagations(solver_->stats().propagations -
                                               propagations_seen);
    }
    conflicts_seen = solver_->stats().conflicts;
    propagations_seen = solver_->stats().propagations;
    if (r == sat::Result::Sat) {
      std::vector<uint8_t> model(entry.cone.aig.num_inputs());
      for (size_t i = 0; i < model.size(); ++i) {
        const sat::Var v = entry.vars[entry.cone.aig.inputs()[i]];
        model[i] = solver_->model_value(v) ? 1 : 0;
      }
      remember_pattern(entry, model);
    }
    return r;
  };

  // The solve(true)/solve(false) decision tree below must stay in lockstep
  // with InferenceOracle::decide (sat_redundancy.cpp) — the differential
  // tests and bench_oracle's decisions_match enforce it on every change.
  //
  // A replay-verified witness already proves one polarity satisfiable, which
  // makes the corresponding solve() call redundant (its Unsat outcome is
  // impossible, and Sat/Unknown both lead to the same branch below). Caveat:
  // when a query sits exactly at the conflict-budget edge, skipping a call
  // leaves the remaining one more budget than the baseline's shared
  // allowance had, and the persistent solver's learned clauses shift
  // conflict counts — the only ways the two oracles can legitimately
  // diverge, and only on queries whose baseline verdict was already the
  // budget-exhausted Unknown.
  if (sr.has_witness1) {
    ++stats_.sat_calls_skipped;
    const sat::Result r0 = solve_with(false);
    if (r0 == sat::Result::Unsat) {
      ++stats_.decided_sat;
      return finish(key, sg, CtrlDecision::One);
    }
    // Sat: both polarities proven achievable (witness + model) — definitive.
    // Unknown: the solver gave up on budget — recompute next time.
    return finish(key, sg, CtrlDecision::Unknown, r0 == sat::Result::Sat);
  }
  if (sr.has_witness0) {
    ++stats_.sat_calls_skipped;
    const sat::Result r1 = solve_with(true);
    if (r1 == sat::Result::Unsat) {
      ++stats_.decided_sat;
      return finish(key, sg, CtrlDecision::Zero);
    }
    return finish(key, sg, CtrlDecision::Unknown, r1 == sat::Result::Sat);
  }

  const sat::Result r1 = solve_with(true);
  if (r1 == sat::Result::Unsat) {
    const sat::Result r0 = solve_with(false);
    if (r0 == sat::Result::Unsat) {
      ++stats_.dead_paths;
      return finish(key, sg, CtrlDecision::DeadPath);
    }
    ++stats_.decided_sat;
    return finish(key, sg, CtrlDecision::Zero); // s=1 impossible
  }
  const sat::Result r0 = solve_with(false);
  if (r0 == sat::Result::Unsat) {
    ++stats_.decided_sat;
    return finish(key, sg, CtrlDecision::One); // s=0 impossible
  }
  // Both-Sat is a proven "not forced"; any budget-exhausted Unknown is not.
  return finish(key, sg, CtrlDecision::Unknown,
                r1 == sat::Result::Sat && r0 == sat::Result::Sat);
}

} // namespace smartly::core
