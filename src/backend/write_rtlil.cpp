#include "backend/write_rtlil.hpp"

#include <sstream>

namespace smartly::backend {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Module;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

namespace {

void render_sig(std::ostringstream& out, const SigSpec& sig) {
  // Compact rendering: coalesced wire slices and constants, MSB first.
  struct Chunk {
    const rtlil::Wire* wire = nullptr;
    int lo = 0, len = 0;
    std::string const_bits; // MSB-first while building reversed below
  };
  std::vector<Chunk> chunks;
  for (const SigBit& b : sig) {
    if (b.is_wire()) {
      if (!chunks.empty() && chunks.back().wire == b.wire &&
          chunks.back().lo + chunks.back().len == b.offset)
        ++chunks.back().len;
      else
        chunks.push_back({b.wire, b.offset, 1, {}});
    } else {
      if (!chunks.empty() && !chunks.back().wire)
        chunks.back().const_bits.push_back(rtlil::state_to_char(b.data));
      else
        chunks.push_back({nullptr, 0, 0, std::string(1, rtlil::state_to_char(b.data))});
    }
  }
  if (chunks.size() > 1)
    out << "{ ";
  for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
    if (it != chunks.rbegin())
      out << " ";
    if (it->wire) {
      out << it->wire->name();
      if (!(it->lo == 0 && it->len == it->wire->width())) {
        if (it->len == 1)
          out << " [" << it->lo << "]";
        else
          out << " [" << (it->lo + it->len - 1) << ":" << it->lo << "]";
      }
    } else {
      std::string bits = it->const_bits;
      out << bits.size() << "'" << std::string(bits.rbegin(), bits.rend());
    }
  }
  if (chunks.size() > 1)
    out << " }";
}

} // namespace

std::string write_rtlil(const Module& module) {
  std::ostringstream out;
  out << "module " << module.name() << "\n";
  for (const auto& w : module.wires()) {
    out << "  wire ";
    if (w->width() != 1)
      out << "width " << w->width() << " ";
    if (w->port_input)
      out << "input " << w->port_id << " ";
    if (w->port_output)
      out << "output " << w->port_id << " ";
    out << w->name() << "\n";
  }
  for (const auto& c : module.cells()) {
    out << "  cell " << rtlil::cell_type_name(c->type()) << " " << c->name() << "\n";
    for (int pi = 0; pi < rtlil::kPortCount; ++pi) {
      const Port p = static_cast<Port>(pi);
      if (!c->has_port(p))
        continue;
      out << "    connect \\" << rtlil::port_name(p) << " ";
      render_sig(out, c->port(p));
      out << "\n";
    }
  }
  for (const auto& [lhs, rhs] : module.connections()) {
    out << "  connect ";
    render_sig(out, lhs);
    out << " = ";
    render_sig(out, rhs);
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

std::string write_rtlil(const rtlil::Design& design) {
  std::string out;
  for (const auto& m : design.modules())
    out += write_rtlil(*m);
  return out;
}

} // namespace smartly::backend
