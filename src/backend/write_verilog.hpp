// Verilog backend — emit an RTLIL module as synthesizable Verilog.
//
// The emitted text uses only constructs our own frontend accepts, so a
// write -> read round trip is a well-defined operation; the property tests
// prove `read(write(m))` combinationally equivalent to `m`. This is also how
// `opt_tool -o out.v` exports optimized netlists.
#pragma once

#include "rtlil/module.hpp"

#include <string>

namespace smartly::backend {

/// Render one module. Cells become `assign`/`always` statements; $mux and
/// $pmux become ternary chains; $dff becomes an `always @(posedge ...)`.
std::string write_verilog(const rtlil::Module& module);

/// Render every module in the design.
std::string write_verilog(const rtlil::Design& design);

} // namespace smartly::backend
