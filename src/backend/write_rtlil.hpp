// Human-readable RTLIL text dump (Yosys `write_rtlil`/`dump` analogue).
//
// Purely diagnostic: a stable, greppable rendering of a module's wires,
// cells, and connections for debugging passes and inspecting optimizer
// output. Not meant to be parsed back (use write_verilog for round trips).
#pragma once

#include "rtlil/module.hpp"

#include <string>

namespace smartly::backend {

std::string write_rtlil(const rtlil::Module& module);
std::string write_rtlil(const rtlil::Design& design);

} // namespace smartly::backend
