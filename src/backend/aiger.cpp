#include "backend/aiger.hpp"

#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace smartly::backend {

using aig::Aig;
using aig::Lit;

namespace {

/// Renumbering shared by both writers: AIGER wants variables 1..I for inputs
/// then I+1..I+A for ANDs, each AND defined after its fanins.
struct Renumbering {
  std::unordered_map<uint32_t, uint32_t> var_of; // our node -> aiger variable
  std::vector<uint32_t> and_nodes;               // our node ids, ascending
};

Renumbering renumber(const Aig& g) {
  Renumbering r;
  r.var_of.emplace(0, 0); // constant false
  uint32_t next = 1;
  for (uint32_t n : g.inputs())
    r.var_of.emplace(n, next++);
  for (uint32_t n = 1; n < g.num_nodes(); ++n) {
    if (!g.is_and(n))
      continue;
    r.and_nodes.push_back(n);
    r.var_of.emplace(n, next++);
  }
  return r;
}

uint32_t map_lit(const Renumbering& r, Lit l) {
  return r.var_of.at(aig::lit_node(l)) * 2 + (aig::lit_compl(l) ? 1 : 0);
}

void append_symbols(std::ostringstream& out, const Aig& g) {
  for (size_t i = 0; i < g.num_inputs(); ++i)
    if (!g.input_name(static_cast<int>(i)).empty())
      out << "i" << i << " " << g.input_name(static_cast<int>(i)) << "\n";
  for (size_t i = 0; i < g.num_outputs(); ++i)
    if (!g.output_name(static_cast<int>(i)).empty())
      out << "o" << i << " " << g.output_name(static_cast<int>(i)) << "\n";
}

void push_delta(std::string& out, uint32_t delta) {
  // LEB128: 7 bits per byte, high bit = continuation.
  while (delta >= 0x80) {
    out.push_back(static_cast<char>(0x80 | (delta & 0x7f)));
    delta >>= 7;
  }
  out.push_back(static_cast<char>(delta));
}

class Parser {
public:
  explicit Parser(const std::string& text) : in_(text) {}

  Aig run() {
    std::string magic;
    in_ >> magic;
    if (magic != "aag" && magic != "aig")
      throw std::runtime_error("aiger: bad magic '" + magic + "'");
    const bool binary = magic == "aig";
    size_t m = 0, i = 0, l = 0, o = 0, a = 0;
    in_ >> m >> i >> l >> o >> a;
    if (!in_)
      throw std::runtime_error("aiger: bad header");
    if (l != 0)
      throw std::runtime_error("aiger: latches are not supported");
    if (m < i + a)
      throw std::runtime_error("aiger: inconsistent header counts");

    Aig g;
    std::vector<Lit> lit_of_var(m + 1, aig::kFalse);
    std::vector<std::string> input_names(i), output_names(o);

    if (binary) {
      for (size_t k = 0; k < i; ++k)
        lit_of_var[k + 1] = g.add_input();
      std::vector<uint32_t> out_lits(o);
      for (size_t k = 0; k < o; ++k)
        in_ >> out_lits[k];
      in_.get(); // consume the newline before the binary section
      for (size_t k = 0; k < a; ++k) {
        const uint32_t lhs_var = static_cast<uint32_t>(i + 1 + k);
        const uint32_t lhs = lhs_var * 2;
        const uint32_t d0 = read_delta();
        const uint32_t d1 = read_delta();
        if (d0 > lhs)
          throw std::runtime_error("aiger: invalid delta");
        const uint32_t rhs0 = lhs - d0;
        if (d1 > rhs0)
          throw std::runtime_error("aiger: invalid delta");
        const uint32_t rhs1 = rhs0 - d1;
        lit_of_var[lhs_var] = g.and_(decode(lit_of_var, rhs0), decode(lit_of_var, rhs1));
      }
      read_symbols(input_names, output_names);
      for (size_t k = 0; k < o; ++k)
        g.add_output(decode(lit_of_var, out_lits[k]), output_names[k]);
      apply_input_names(g, input_names);
      return g;
    }

    // ASCII: input literal lines, output literal lines, then AND triples.
    std::vector<uint32_t> in_lits(i), out_lits(o);
    for (size_t k = 0; k < i; ++k)
      in_ >> in_lits[k];
    for (size_t k = 0; k < o; ++k)
      in_ >> out_lits[k];
    struct AndLine {
      uint32_t lhs, rhs0, rhs1;
    };
    std::vector<AndLine> ands(a);
    for (size_t k = 0; k < a; ++k)
      in_ >> ands[k].lhs >> ands[k].rhs0 >> ands[k].rhs1;
    if (!in_)
      throw std::runtime_error("aiger: truncated body");

    for (size_t k = 0; k < i; ++k) {
      if (in_lits[k] % 2 || in_lits[k] / 2 > m)
        throw std::runtime_error("aiger: bad input literal");
      lit_of_var[in_lits[k] / 2] = g.add_input();
    }
    for (const AndLine& line : ands) {
      if (line.lhs % 2 || line.lhs / 2 > m)
        throw std::runtime_error("aiger: bad and literal");
      lit_of_var[line.lhs / 2] =
          g.and_(decode(lit_of_var, line.rhs0), decode(lit_of_var, line.rhs1));
    }
    read_symbols(input_names, output_names);
    for (size_t k = 0; k < o; ++k)
      g.add_output(decode(lit_of_var, out_lits[k]), output_names[k]);
    apply_input_names(g, input_names);
    return g;
  }

private:
  static Lit decode(const std::vector<Lit>& lit_of_var, uint32_t aiger_lit) {
    const Lit base = lit_of_var.at(aiger_lit / 2);
    return (aiger_lit % 2) ? aig::lit_not(base) : base;
  }

  uint32_t read_delta() {
    uint32_t value = 0;
    int shift = 0;
    for (;;) {
      const int c = in_.get();
      if (c == EOF)
        throw std::runtime_error("aiger: truncated binary section");
      value |= static_cast<uint32_t>(c & 0x7f) << shift;
      if (!(c & 0x80))
        return value;
      shift += 7;
      if (shift > 28)
        throw std::runtime_error("aiger: delta overflow");
    }
  }

  void read_symbols(std::vector<std::string>& input_names,
                    std::vector<std::string>& output_names) {
    std::string line;
    while (std::getline(in_, line)) {
      if (line.empty())
        continue;
      if (line[0] == 'c')
        break; // comment section
      const auto sp = line.find(' ');
      if ((line[0] != 'i' && line[0] != 'o') || sp == std::string::npos)
        continue;
      const size_t idx = std::stoul(line.substr(1, sp - 1));
      const std::string name = line.substr(sp + 1);
      if (line[0] == 'i' && idx < input_names.size())
        input_names[idx] = name;
      if (line[0] == 'o' && idx < output_names.size())
        output_names[idx] = name;
    }
  }

  static void apply_input_names(Aig&, const std::vector<std::string>&) {
    // Aig::add_input takes the name at creation; binary inputs are created
    // before the symbol table is read, so names are dropped there. Harmless:
    // names are cosmetic for interchange and the tests compare functions.
  }

  std::istringstream in_;
};

} // namespace

std::string write_aiger_ascii(const Aig& g) {
  const Renumbering r = renumber(g);
  std::ostringstream out;
  const size_t m = g.num_inputs() + r.and_nodes.size();
  out << "aag " << m << " " << g.num_inputs() << " 0 " << g.num_outputs() << " "
      << r.and_nodes.size() << "\n";
  for (size_t i = 0; i < g.num_inputs(); ++i)
    out << (i + 1) * 2 << "\n";
  for (size_t i = 0; i < g.num_outputs(); ++i)
    out << map_lit(r, g.output(static_cast<int>(i))) << "\n";
  for (uint32_t n : r.and_nodes)
    out << r.var_of.at(n) * 2 << " " << map_lit(r, g.fanin0(n)) << " "
        << map_lit(r, g.fanin1(n)) << "\n";
  append_symbols(out, g);
  return out.str();
}

std::string write_aiger_binary(const Aig& g) {
  const Renumbering r = renumber(g);
  std::ostringstream out;
  const size_t m = g.num_inputs() + r.and_nodes.size();
  out << "aig " << m << " " << g.num_inputs() << " 0 " << g.num_outputs() << " "
      << r.and_nodes.size() << "\n";
  for (size_t i = 0; i < g.num_outputs(); ++i)
    out << map_lit(r, g.output(static_cast<int>(i))) << "\n";
  std::string body;
  for (uint32_t n : r.and_nodes) {
    const uint32_t lhs = r.var_of.at(n) * 2;
    uint32_t rhs0 = map_lit(r, g.fanin0(n));
    uint32_t rhs1 = map_lit(r, g.fanin1(n));
    if (rhs0 < rhs1)
      std::swap(rhs0, rhs1);
    push_delta(body, lhs - rhs0);
    push_delta(body, rhs0 - rhs1);
  }
  out << body;
  std::ostringstream sym;
  append_symbols(sym, g);
  out << sym.str();
  return out.str();
}

Aig read_aiger(const std::string& text) { return Parser(text).run(); }

} // namespace smartly::backend
