// AIGER format I/O (http://fmv.jku.at/aiger/) for the AIG package.
//
// Supports the combinational subset (no latches): ASCII ("aag") and binary
// ("aig") variants, with the symbol table for input/output names. This is the
// standard interchange format for AIG-based tools (ABC, aigsim, ...), which
// makes the paper's area metric externally auditable.
#pragma once

#include "aig/aig.hpp"

#include <string>

namespace smartly::backend {

/// Serialize to ASCII AIGER ("aag"). Includes a symbol table.
std::string write_aiger_ascii(const aig::Aig& aig);

/// Serialize to binary AIGER ("aig"). Nodes are renumbered topologically as
/// the format requires; includes a symbol table.
std::string write_aiger_binary(const aig::Aig& aig);

/// Parse either variant (auto-detected from the header). Throws
/// std::runtime_error on malformed input or unsupported features (latches).
aig::Aig read_aiger(const std::string& text);

} // namespace smartly::backend
