#include "backend/write_verilog.hpp"

#include "util/log.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace smartly::backend {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Const;
using rtlil::Module;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;
using rtlil::Wire;

namespace {

const std::unordered_set<std::string>& verilog_keywords() {
  static const std::unordered_set<std::string> kw = {
      "module", "endmodule", "input",  "output", "inout",    "wire",   "reg",
      "assign", "always",    "begin",  "end",    "if",       "else",   "case",
      "casez",  "casex",     "endcase", "default", "posedge", "negedge", "parameter",
      "localparam", "signed", "integer", "function", "endfunction", "for", "while"};
  return kw;
}

// Matches the front end's identifier set (lexer.cpp is_ident_*), which
// includes '$' — so machine-generated names like $sig$5 round-trip verbatim
// instead of being renamed. Name preservation is what keeps the recovery
// layer's name-hash unit ids (quarantine keys, fault units) stable when a
// repro bundle's design.v is re-read for --replay.
bool is_clean_identifier(const std::string& s) {
  if (s.empty() || verilog_keywords().count(s))
    return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' || s[0] == '$'))
    return false;
  for (char c : s)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$'))
      return false;
  return true;
}

class Writer {
public:
  explicit Writer(const Module& module) : module_(module) { assign_names(); }

  std::string run() {
    std::ostringstream body;
    emit_connections(body);
    emit_cells(body);

    std::ostringstream out;
    emit_header(out);
    out << decls_.str();
    out << body.str();
    out << "endmodule\n";
    return out.str();
  }

private:
  void assign_names() {
    std::unordered_set<std::string> used;
    uint64_t counter = 0;
    for (const auto& w : module_.wires()) {
      std::string name = w->name();
      if (!is_clean_identifier(name) || used.count(name)) {
        do {
          name = "gen_" + std::to_string(counter++);
        } while (used.count(name));
      }
      used.insert(name);
      names_.emplace(w.get(), std::move(name));
    }
  }

  const std::string& name_of(const Wire* w) const { return names_.at(w); }

  /// Fresh helper wire declared in the output text (not added to the module).
  std::string fresh_wire(int width, bool as_reg) {
    const std::string name = "bk_" + std::to_string(fresh_counter_++);
    decls_ << "  " << (as_reg ? "reg " : "wire ") << range(width) << name << ";\n";
    return name;
  }

  static std::string range(int width) {
    return width == 1 ? "" : "[" + std::to_string(width - 1) + ":0] ";
  }

  static std::string const_literal(const Const& c) {
    std::string bits = c.to_string(); // MSB first
    return std::to_string(c.size()) + "'b" + bits;
  }

  /// Render a SigSpec as a Verilog expression (concatenation of coalesced
  /// wire slices and constant literals, MSB first).
  std::string sig_expr(const SigSpec& sig) const {
    if (sig.empty())
      return "1'b0"; // never expected on connected ports
    struct Chunk {
      const Wire* wire = nullptr;
      int lo = 0, len = 0;      // wire chunk
      std::vector<State> bits;  // constant chunk
    };
    std::vector<Chunk> chunks;
    for (const SigBit& b : sig) {
      if (b.is_wire()) {
        if (!chunks.empty() && chunks.back().wire == b.wire &&
            chunks.back().lo + chunks.back().len == b.offset) {
          ++chunks.back().len;
        } else {
          chunks.push_back({b.wire, b.offset, 1, {}});
        }
      } else {
        if (!chunks.empty() && !chunks.back().wire)
          chunks.back().bits.push_back(b.data);
        else
          chunks.push_back({nullptr, 0, 0, {b.data}});
      }
    }
    std::vector<std::string> parts; // built LSB-first, emitted reversed
    for (const Chunk& ch : chunks) {
      if (ch.wire) {
        if (ch.lo == 0 && ch.len == ch.wire->width())
          parts.push_back(name_of(ch.wire));
        else if (ch.len == 1)
          parts.push_back(name_of(ch.wire) + "[" + std::to_string(ch.lo) + "]");
        else
          parts.push_back(name_of(ch.wire) + "[" + std::to_string(ch.lo + ch.len - 1) +
                          ":" + std::to_string(ch.lo) + "]");
      } else {
        parts.push_back(const_literal(Const(ch.bits)));
      }
    }
    if (parts.size() == 1)
      return parts[0];
    std::string out = "{";
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      if (it != parts.rbegin())
        out += ", ";
      out += *it;
    }
    return out + "}";
  }

  /// Extend/truncate an operand to `width` structurally: sign extension is
  /// emitted as replicated MSB *bits* in a concatenation, so the frontend
  /// (which is unsigned-only) reproduces signed cell semantics exactly.
  std::string sized(const SigSpec& sig, int width, bool is_signed = false) {
    if (sig.size() == width)
      return sig_expr(sig);
    SigSpec adj = sig.extended(width, is_signed);
    return sig_expr(adj);
  }

  void emit_header(std::ostringstream& out) {
    out << "module " << module_.name() << "(";
    bool first = true;
    for (const Wire* p : module_.ports()) {
      if (!first)
        out << ", ";
      first = false;
      out << name_of(p);
    }
    out << ");\n";
  }

  void declare_all() {
    for (const auto& w : module_.wires()) {
      const bool is_reg = reg_wires_.count(w.get()) != 0;
      std::string kind;
      if (w->port_input)
        kind = "input ";
      else if (w->port_output)
        kind = is_reg ? "output reg " : "output ";
      else
        kind = is_reg ? "reg " : "wire ";
      decls_ << "  " << kind << range(w->width()) << name_of(w.get()) << ";\n";
    }
  }

  void emit_connections(std::ostringstream& out) {
    // Mark dff-driven wires as regs first (declarations need it).
    for (const auto& c : module_.cells())
      if (c->type() == CellType::Dff)
        for (const SigBit& b : c->port(Port::Q))
          if (b.is_wire())
            reg_wires_.insert(b.wire);
    declare_all();

    for (const auto& [lhs, rhs] : module_.connections())
      out << "  assign " << sig_expr(lhs) << " = " << sized(rhs, lhs.size()) << ";\n";
  }

  std::string unary_expr(const Cell& c) {
    const SigSpec& a = c.port(Port::A);
    const bool sa = c.params().a_signed;
    const int yw = c.params().y_width;
    switch (c.type()) {
    case CellType::Not: return "~" + sized(a, yw, sa);
    case CellType::Pos: return sized(a, yw, sa);
    case CellType::Neg: return "(-" + sized(a, yw, sa) + ")";
    case CellType::ReduceAnd: return "(&" + sig_expr(a) + ")";
    case CellType::ReduceOr:
    case CellType::ReduceBool: return "(|" + sig_expr(a) + ")";
    case CellType::ReduceXor: return "(^" + sig_expr(a) + ")";
    case CellType::ReduceXnor: return "(~^" + sig_expr(a) + ")";
    case CellType::LogicNot: return "(!" + sig_expr(a) + ")";
    default: break;
    }
    throw std::logic_error("write_verilog: bad unary cell");
  }

  std::string binary_expr(const Cell& c) {
    const SigSpec& a = c.port(Port::A);
    const SigSpec& b = c.port(Port::B);
    const bool sa = c.params().a_signed;
    const bool sb = c.params().b_signed;
    const int yw = c.params().y_width;
    const int w = std::max({a.size(), b.size(), yw});
    auto bin = [&](const char* op) {
      return "(" + sized(a, w, sa) + " " + op + " " + sized(b, w, sb) + ")";
    };
    // Ordered comparisons are signed iff both operands are (matching the
    // evaluator). The frontend is unsigned-only, so signed order is emitted
    // with the bias trick: slt(a, b) == ult(a ^ MSB, b ^ MSB).
    auto cmp = [&](const char* op) {
      const int cw = std::max(a.size(), b.size());
      std::string ax = sized(a, cw, sa);
      std::string bx = sized(b, cw, sb);
      if (sa && sb) {
        const std::string bias =
            std::to_string(cw) + "'b1" + std::string(static_cast<size_t>(cw - 1), '0');
        ax = "(" + ax + " ^ " + bias + ")";
        bx = "(" + bx + " ^ " + bias + ")";
      }
      return "(" + ax + " " + op + " " + bx + ")";
    };
    // Equality is bit-precise after extension; no bias needed.
    auto eq = [&](const char* op) {
      const int cw = std::max(a.size(), b.size());
      return "(" + sized(a, cw, sa) + " " + op + " " + sized(b, cw, sb) + ")";
    };
    switch (c.type()) {
    case CellType::And: return bin("&");
    case CellType::Or: return bin("|");
    case CellType::Xor: return bin("^");
    case CellType::Xnor: return bin("~^");
    case CellType::Add: return bin("+");
    case CellType::Sub: return bin("-");
    case CellType::Mul: return bin("*");
    case CellType::Shl:
      return "(" + sized(a, std::max(a.size(), yw), sa) + " << " + sig_expr(b) + ")";
    case CellType::Shr:
      return "(" + sized(a, std::max(a.size(), yw), sa) + " >> " + sig_expr(b) + ")";
    case CellType::Sshr: {
      // Arithmetic shift: pre-extend by the worst-case shift so the sign
      // bits are materialized, then shift logically. Bounded because the
      // amount port is narrow in practice; refuse pathological widths.
      if (b.size() > 16)
        throw std::logic_error("write_verilog: sshr amount too wide to materialize");
      const int aw = std::max(a.size(), yw);
      const int ext = aw + (b.size() >= 12 ? 4096 : (1 << b.size())) - 1;
      return "(" + sized(a, ext, sa) + " >> " + sig_expr(b) + ")";
    }
    case CellType::Lt: return cmp("<");
    case CellType::Le: return cmp("<=");
    case CellType::Eq: return eq("==");
    case CellType::Ne: return eq("!=");
    case CellType::Ge: return cmp(">=");
    case CellType::Gt: return cmp(">");
    // 1-bit operands skip the (|...) wrap — same round-trip reasoning as Mux
    // selects: && / || re-elaborate to one LogicAnd/LogicOr cell over the
    // operands, so the wrap would add ReduceOr cells the original never had.
    case CellType::LogicAnd:
      return "(" + (a.size() == 1 ? sig_expr(a) : "(|" + sig_expr(a) + ")") + " && " +
             (b.size() == 1 ? sig_expr(b) : "(|" + sig_expr(b) + ")") + ")";
    case CellType::LogicOr:
      return "(" + (a.size() == 1 ? sig_expr(a) : "(|" + sig_expr(a) + ")") + " || " +
             (b.size() == 1 ? sig_expr(b) : "(|" + sig_expr(b) + ")") + ")";
    default: break;
    }
    throw std::logic_error("write_verilog: bad binary cell");
  }

  void emit_cells(std::ostringstream& out) {
    for (const auto& cptr : module_.cells()) {
      const Cell& c = *cptr;
      switch (c.type()) {
      case CellType::Mux: {
        // 1-bit selects (the RTLIL invariant) are emitted bare: a defensive
        // (|s) wrap would re-elaborate into an extra ReduceOr cell and break
        // the name-stable round-trip repro bundles depend on.
        const SigSpec& s = c.port(Port::S);
        const std::string sel = s.size() == 1 ? sig_expr(s) : "(|" + sig_expr(s) + ")";
        out << "  assign " << sig_expr(c.port(Port::Y)) << " = " << sel << " ? "
            << sig_expr(c.port(Port::B)) << " : " << sig_expr(c.port(Port::A)) << ";\n";
        continue;
      }
      case CellType::Pmux: {
        // Lowest set select bit wins: s[0] ? B0 : (s[1] ? B1 : ... : A).
        const SigSpec& s = c.port(Port::S);
        const SigSpec& b = c.port(Port::B);
        const int w = c.params().width;
        std::string expr = sig_expr(c.port(Port::A));
        for (int i = s.size() - 1; i >= 0; --i) {
          expr = "(" + sig_expr(SigSpec(s[i])) + " ? " + sig_expr(b.extract(i * w, w)) +
                 " : " + expr + ")";
        }
        out << "  assign " << sig_expr(c.port(Port::Y)) << " = " << expr << ";\n";
        continue;
      }
      case CellType::Dff: {
        // The parser only accepts @(posedge IDENT): materialize the clock as
        // a plain 1-bit wire when it is not one already.
        const SigSpec& clk = c.port(Port::Clk);
        std::string clk_name;
        if (clk.size() == 1 && clk[0].is_wire() && clk[0].offset == 0 &&
            clk[0].wire->width() == 1) {
          clk_name = name_of(clk[0].wire);
        } else {
          clk_name = fresh_wire(1, false);
          out << "  assign " << clk_name << " = " << sig_expr(clk) << ";\n";
        }
        out << "  always @(posedge " << clk_name << ") " << sig_expr(c.port(Port::Q))
            << " <= " << sized(c.port(Port::D), c.port(Port::Q).size()) << ";\n";
        continue;
      }
      default:
        break;
      }
      const std::string expr =
          rtlil::cell_is_unary(c.type()) ? unary_expr(c) : binary_expr(c);
      const SigSpec& y = c.port(Port::Y);
      // Wide expression truncated by assignment width is exactly the cell's
      // extend-compute-truncate semantics under our frontend's context rule.
      out << "  assign " << sig_expr(y) << " = " << expr << ";\n";
    }
  }

  const Module& module_;
  std::unordered_map<const Wire*, std::string> names_;
  std::unordered_set<const Wire*> reg_wires_;
  std::ostringstream decls_;
  uint64_t fresh_counter_ = 0;
};

} // namespace

std::string write_verilog(const Module& module) { return Writer(module).run(); }

std::string write_verilog(const rtlil::Design& design) {
  std::string out;
  for (const auto& m : design.modules()) {
    out += write_verilog(*m);
    out += "\n";
  }
  return out;
}

} // namespace smartly::backend
