// k-feasible cut enumeration (k = 4) with dominated-cut pruning.
//
// A cut of node n is a set of nodes ("leaves") such that every path from a
// primary input to n passes through a leaf; n is then a function of the
// leaves, and for |leaves| <= 4 that function is a 16-bit truth table the
// rewriting engine can classify and resynthesize. Cuts are built bottom-up
// in one topological pass (AIG node ids are topologically increasing): the
// cut set of an AND node is the pairwise merge of its fanin cut sets plus
// the trivial cut {n}, pruned in two ways —
//
//   dominance   a cut whose leaves are a superset of another cut's leaves is
//               dropped (the dominating cut yields the same or a larger cone
//               for fewer leaves);
//   priority    at most `cut_limit` non-trivial cuts survive per node, kept
//               in (size, leaves) lexicographic order — deterministic, and
//               biased toward small cuts whose cones merge further up.
//
// The 32-bit leaf signature (1 << (leaf & 31)) makes subset tests and the
// 4-leaf bound cheap before any array comparison.
#pragma once

#include "aig/aig.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace smartly::rewrite {

struct Cut {
  std::array<uint32_t, 4> leaves{}; ///< sorted ascending; [0, size) valid
  uint8_t size = 0;
  uint32_t sign = 0; ///< bloom signature: OR of 1 << (leaf & 31)

  bool operator==(const Cut& o) const noexcept {
    return size == o.size && leaves == o.leaves;
  }
  /// Deterministic priority order: smaller first, then leaf-lexicographic.
  bool operator<(const Cut& o) const noexcept {
    if (size != o.size)
      return size < o.size;
    return leaves < o.leaves;
  }
  /// True when this cut's leaves are a subset of `o`'s (it dominates o).
  bool subset_of(const Cut& o) const noexcept;
};

struct CutOptions {
  int cut_limit = 8; ///< non-trivial cuts kept per node
};

struct CutSet {
  /// cuts[n]: the node's cut set; the trivial cut {n} is always last.
  std::vector<std::vector<Cut>> cuts;
  size_t total = 0; ///< non-trivial cuts enumerated (kept)
};

CutSet enumerate_cuts(const aig::Aig& aig, const CutOptions& options = {});

} // namespace smartly::rewrite
