// NPN canonicalization of 4-input truth tables.
//
// The cut-rewriting engine classifies every 4-feasible cut function by its
// NPN class: two functions are NPN-equivalent when one can be obtained from
// the other by permuting inputs (P), complementing inputs (N), and/or
// complementing the output (N). The 65536 4-input functions fall into exactly
// 222 classes; the table below precomputes, for every truth table, its class
// representative (the numerically smallest member of the orbit) plus the
// transform that maps the representative back onto the table, so lookups are
// two array reads.
//
// Transform encoding: index t in [0, 768) decodes as
//   perm  = t / 32          (index into perms(), 24 input permutations)
//   neg   = (t / 2) & 15    (input complement mask, bit i complements input i)
//   out   = t & 1           (output complement)
// and apply(f, t) is g with g(x0..x3) = f(y0..y3) ^ out where input i of f
// reads y_i = x_{perm[i]} ^ neg_i. Index 0 is the identity.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace smartly::rewrite {

/// 4-input truth table: bit m is f(m_0, m_1, m_2, m_3) with m_i = (m >> i) & 1.
using TruthTable = uint16_t;

/// Truth table of the projection onto input i (f = x_i).
constexpr TruthTable kProjection[4] = {0xaaaa, 0xcccc, 0xf0f0, 0xff00};

constexpr size_t kNumTransforms = 24 * 16 * 2; // 768

class NpnTable {
public:
  /// The process-wide table (built once, ~0.4 MB, thread-safe after return).
  static const NpnTable& instance();

  /// Smallest truth table NPN-equivalent to `tt`.
  TruthTable canonical(TruthTable tt) const { return canon_[tt]; }

  /// Dense class index in [0, num_classes()), ordered by representative.
  uint16_t class_id(TruthTable tt) const { return class_id_[tt]; }

  /// A transform u with apply(canonical(tt), u) == tt.
  uint16_t from_canonical(TruthTable tt) const { return from_canon_[tt]; }

  size_t num_classes() const { return representatives_.size(); } ///< 222
  const std::vector<TruthTable>& representatives() const { return representatives_; }

  /// Apply transform `t` (see the encoding above) to `tt`.
  static TruthTable apply(TruthTable tt, uint16_t t);

  /// The 24 input permutations, lexicographic; perms()[p][i] is the x index
  /// feeding input i of the transformed function.
  static const std::array<std::array<uint8_t, 4>, 24>& perms();

private:
  NpnTable();

  std::vector<TruthTable> canon_;
  std::vector<uint16_t> class_id_;
  std::vector<uint16_t> from_canon_;
  std::vector<TruthTable> representatives_;
};

} // namespace smartly::rewrite
