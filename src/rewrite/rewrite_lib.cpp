#include "rewrite/rewrite_lib.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace smartly::rewrite {

using rtlil::CellType;

namespace {

constexpr TruthTable kAllOnes = 0xffff;

/// Cofactor of `tt` with input `var` fixed to `val`, replicated back onto
/// both halves (the result no longer depends on `var`).
TruthTable cofactor(TruthTable tt, int var, int val) {
  const int shift = 1 << var;
  if (val) {
    const TruthTable part = tt & kProjection[var];
    return static_cast<TruthTable>(part | (part >> shift));
  }
  const TruthTable part = tt & static_cast<TruthTable>(~kProjection[var]);
  return static_cast<TruthTable>(part | (part << shift));
}

/// Decomposition forms, in tie-break order (first var, then this order).
enum class Form : uint8_t {
  Const,   ///< f is constant 0/1
  Proj,    ///< f = x_var
  NotProj, ///< f = ~x_var
  AndVar,  ///< f = x & f1
  OrVar,   ///< f = x | f0
  MuxZero, ///< f = x ? 0 : f0
  MuxOne,  ///< f = x ? f1 : 1
  XorVar,  ///< f = x ^ f0
  Mux,     ///< f = x ? f1 : f0 (Shannon)
  MuxPair, ///< f = t ? x_b : x_a with computed select t (mux bi-decomposition)
};

/// Cost is lexicographic (cells, AIG nodes): the engine's gain gate is in
/// RTLIL cells, but among equal-cell structures the one with the smaller
/// blast footprint wins — that is what lets mux-heavy netlists trade two
/// chained muxes for an And + Mux (same cells, 4 AIG nodes instead of 6).
struct Decomp {
  uint16_t cells = 0;
  uint16_t aig = 0;
  Form form = Form::Const;
  uint8_t var = 0; ///< variable; for MuxPair: a_var * 4 + b_var
};

uint16_t eval_operand(const GateOperand& o, const TruthTable leaves[4],
                      const std::vector<uint16_t>& vals) {
  switch (o.kind) {
  case GateOperand::Const0: return 0;
  case GateOperand::Const1: return kAllOnes;
  case GateOperand::Leaf: return leaves[o.index];
  case GateOperand::Node: return vals[o.index];
  }
  return 0;
}

} // namespace

uint8_t tt_support(TruthTable tt) {
  uint8_t mask = 0;
  for (uint8_t v = 0; v < 4; ++v)
    if (cofactor(tt, v, 0) != cofactor(tt, v, 1))
      mask |= static_cast<uint8_t>(1u << v);
  return mask;
}

TruthTable eval_program(const GateProgram& p, const TruthTable leaves[4]) {
  std::vector<uint16_t> vals(p.ops.size());
  for (size_t i = 0; i < p.ops.size(); ++i) {
    const GateOp& op = p.ops[i];
    const uint16_t a = eval_operand(op.a, leaves, vals);
    const uint16_t b = eval_operand(op.b, leaves, vals);
    switch (op.type) {
    case CellType::Not: vals[i] = static_cast<uint16_t>(~a); break;
    case CellType::And: vals[i] = a & b; break;
    case CellType::Or: vals[i] = a | b; break;
    case CellType::Xor: vals[i] = a ^ b; break;
    case CellType::Mux: {
      const uint16_t s = eval_operand(op.s, leaves, vals);
      vals[i] = static_cast<uint16_t>((s & b) | (~s & a));
      break;
    }
    default: vals[i] = 0; break;
    }
  }
  return static_cast<TruthTable>(eval_operand(p.out, leaves, vals));
}

struct RewriteLibrary::Impl {
  mutable std::mutex mutex;
  mutable std::unordered_map<TruthTable, Decomp> decomp;
  mutable std::unordered_map<TruthTable, std::unique_ptr<GateProgram>> programs;
  mutable size_t max_cost = 0;
  mutable bool max_cost_known = false;

  const Decomp& decompose(TruthTable tt) const {
    auto it = decomp.find(tt);
    if (it != decomp.end())
      return it->second;

    Decomp best;
    bool trivial = true;
    if (tt == 0 || tt == kAllOnes) {
      best = {0, 0, Form::Const, 0};
    } else {
      trivial = false;
      for (uint8_t v = 0; v < 4; ++v) {
        if (tt == kProjection[v]) {
          best = {0, 0, Form::Proj, v};
          trivial = true;
          break;
        }
        if (tt == static_cast<TruthTable>(~kProjection[v])) {
          best = {1, 0, Form::NotProj, v};
          trivial = true;
          break;
        }
      }
    }
    if (!trivial) {
      best.cells = std::numeric_limits<uint16_t>::max();
      best.aig = std::numeric_limits<uint16_t>::max();
      const auto consider = [&](Form form, uint8_t var, uint32_t cells, uint32_t aig) {
        if (cells < best.cells || (cells == best.cells && aig < best.aig))
          best = {static_cast<uint16_t>(cells), static_cast<uint16_t>(aig), form, var};
      };
      for (uint8_t v = 0; v < 4; ++v) {
        const TruthTable f0 = cofactor(tt, v, 0);
        const TruthTable f1 = cofactor(tt, v, 1);
        if (f0 == f1)
          continue; // not in the support
        if (f0 == 0) {
          const Decomp& d = decompose(f1);
          consider(Form::AndVar, v, 1u + d.cells, 1u + d.aig);
        }
        if (f1 == kAllOnes) {
          const Decomp& d = decompose(f0);
          consider(Form::OrVar, v, 1u + d.cells, 1u + d.aig);
        }
        if (f1 == 0) {
          // A constant-leg mux blasts to a single AND (x ? 0 : g == ~x & g).
          const Decomp& d = decompose(f0);
          consider(Form::MuxZero, v, 1u + d.cells, 1u + d.aig);
        }
        if (f0 == kAllOnes) {
          // x ? g : 1 blasts to two ANDs (~(s & ~g) with the inner product).
          const Decomp& d = decompose(f1);
          consider(Form::MuxOne, v, 1u + d.cells, 2u + d.aig);
        }
        if (f0 == static_cast<TruthTable>(~f1)) {
          const Decomp& d = decompose(f0);
          consider(Form::XorVar, v, 1u + d.cells, 3u + d.aig);
        }
        {
          const Decomp& d0 = decompose(f0);
          const Decomp& d1 = decompose(f1);
          consider(Form::Mux, v, 1u + d0.cells + d1.cells, 3u + d0.aig + d1.aig);
        }
      }
      // Mux bi-decomposition: f = t ? x_b : x_a with a *computed* select.
      // This is the form chained muxes with shared legs reduce through
      // (two muxes -> select gate + one mux), unreachable by single-variable
      // Shannon steps.
      for (uint8_t a = 0; a < 4; ++a) {
        for (uint8_t b = 0; b < 4; ++b) {
          if (a == b)
            continue;
          const TruthTable t = cofactor(cofactor(tt, a, 0), b, 1);
          if (t == tt)
            continue; // neither var in the support: no decomposition
          const TruthTable muxed =
              static_cast<TruthTable>((t & kProjection[b]) |
                                      (static_cast<TruthTable>(~t) & kProjection[a]));
          if (muxed != tt)
            continue;
          const Decomp& d = decompose(t);
          consider(Form::MuxPair, static_cast<uint8_t>(a * 4 + b), 1u + d.cells,
                   3u + d.aig);
        }
      }
    }
    return decomp.emplace(tt, best).first->second;
  }

  /// Emit the decomposition of `tt` into `prog`, hashing on sub-truth-table
  /// so shared residual functions become one op (DAG sharing).
  GateOperand emit(TruthTable tt, GateProgram& prog,
                   std::unordered_map<TruthTable, GateOperand>& done) const {
    if (tt == 0)
      return {GateOperand::Const0, 0};
    if (tt == kAllOnes)
      return {GateOperand::Const1, 0};
    const auto it = done.find(tt);
    if (it != done.end())
      return it->second;

    const Decomp d = decompose(tt);
    GateOp op;
    op.tt = tt;
    const GateOperand leaf{GateOperand::Leaf, d.var};
    switch (d.form) {
    case Form::Const:
      return {GateOperand::Const0, 0}; // unreachable: handled above
    case Form::Proj:
      return done.emplace(tt, leaf).first->second;
    case Form::NotProj:
      op.type = CellType::Not;
      op.a = leaf;
      break;
    case Form::AndVar:
      op.type = CellType::And;
      op.a = leaf;
      op.b = emit(cofactor(tt, d.var, 1), prog, done);
      break;
    case Form::OrVar:
      op.type = CellType::Or;
      op.a = leaf;
      op.b = emit(cofactor(tt, d.var, 0), prog, done);
      break;
    case Form::MuxZero:
      op.type = CellType::Mux;
      op.a = emit(cofactor(tt, d.var, 0), prog, done);
      op.b = {GateOperand::Const0, 0};
      op.s = leaf;
      break;
    case Form::MuxOne:
      op.type = CellType::Mux;
      op.a = {GateOperand::Const1, 0};
      op.b = emit(cofactor(tt, d.var, 1), prog, done);
      op.s = leaf;
      break;
    case Form::XorVar:
      op.type = CellType::Xor;
      op.a = leaf;
      op.b = emit(cofactor(tt, d.var, 0), prog, done);
      break;
    case Form::Mux:
      op.type = CellType::Mux;
      op.a = emit(cofactor(tt, d.var, 0), prog, done);
      op.b = emit(cofactor(tt, d.var, 1), prog, done);
      op.s = leaf;
      break;
    case Form::MuxPair: {
      const uint8_t a_var = d.var / 4, b_var = d.var % 4;
      op.type = CellType::Mux;
      op.a = {GateOperand::Leaf, a_var};
      op.b = {GateOperand::Leaf, b_var};
      op.s = emit(cofactor(cofactor(tt, a_var, 0), b_var, 1), prog, done);
      break;
    }
    }
    prog.ops.push_back(op);
    const GateOperand res{GateOperand::Node, static_cast<uint8_t>(prog.ops.size() - 1)};
    return done.emplace(tt, res).first->second;
  }

  const GateProgram& build(TruthTable tt) const {
    const auto it = programs.find(tt);
    if (it != programs.end())
      return *it->second;
    auto prog = std::make_unique<GateProgram>();
    prog->tt = tt;
    for (uint8_t v = 0; v < 4; ++v)
      if (cofactor(tt, v, 0) != cofactor(tt, v, 1))
        prog->support |= static_cast<uint8_t>(1u << v);
    std::unordered_map<TruthTable, GateOperand> done;
    prog->out = emit(tt, *prog, done);
    return *programs.emplace(tt, std::move(prog)).first->second;
  }
};

RewriteLibrary::RewriteLibrary() : impl_(new Impl) {
  // Pre-seed the 222 NPN class representatives: the built-in library proper.
  // Their residual functions warm the shared decomposition memo for every
  // other member of each class.
  for (const TruthTable rep : NpnTable::instance().representatives())
    impl_->build(rep);
}

const RewriteLibrary& RewriteLibrary::instance() {
  static const RewriteLibrary lib;
  return lib;
}

const GateProgram& RewriteLibrary::program(TruthTable tt) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->build(tt);
}

namespace {

/// Structural + semantic validation of an imported program. Checks exactly
/// what build() guarantees: topological operand order, in-range indices, the
/// declared support, and — decisively — that evaluating the DAG over the
/// leaf projections reproduces the declared truth table. A program passing
/// this check is a correct implementation of its function no matter where
/// the bytes came from.
bool program_valid(const GateProgram& p) {
  if (p.ops.size() > 64)
    return false; // far above max_cost(): structurally implausible
  auto operand_ok = [&](const GateOperand& o, size_t op_index) {
    switch (o.kind) {
    case GateOperand::Const0:
    case GateOperand::Const1: return true;
    case GateOperand::Leaf: return o.index < 4;
    case GateOperand::Node: return o.index < op_index;
    }
    return false;
  };
  for (size_t i = 0; i < p.ops.size(); ++i) {
    const GateOp& op = p.ops[i];
    switch (op.type) {
    case CellType::Not:
    case CellType::And:
    case CellType::Or:
    case CellType::Xor:
    case CellType::Mux: break;
    default: return false;
    }
    if (!operand_ok(op.a, i) || !operand_ok(op.b, i) || !operand_ok(op.s, i))
      return false;
  }
  if (!operand_ok(p.out, p.ops.size()))
    return false;
  if (p.support != tt_support(p.tt))
    return false;
  return eval_program(p, kProjection) == p.tt;
}

} // namespace

std::vector<GateProgram> RewriteLibrary::export_programs() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<GateProgram> out;
  out.reserve(impl_->programs.size());
  for (const auto& [tt, prog] : impl_->programs) {
    (void)tt;
    out.push_back(*prog);
  }
  std::sort(out.begin(), out.end(),
            [](const GateProgram& a, const GateProgram& b) { return a.tt < b.tt; });
  return out;
}

size_t RewriteLibrary::import_programs(const std::vector<GateProgram>& programs,
                                       size_t* rejected) const {
  size_t installed = 0;
  size_t bad = 0;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const GateProgram& p : programs) {
    if (!program_valid(p)) {
      ++bad;
      continue;
    }
    if (impl_->programs.count(p.tt) != 0)
      continue; // built-ins and earlier imports win: lookups stay deterministic
    impl_->programs.emplace(p.tt, std::make_unique<GateProgram>(p));
    ++installed;
  }
  if (rejected != nullptr)
    *rejected = bad;
  return installed;
}

size_t RewriteLibrary::memo_size() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->programs.size();
}

uint64_t RewriteLibrary::fingerprint() const {
  uint64_t h = 0x726c6962u; // "rlib"
  for (const TruthTable rep : NpnTable::instance().representatives()) {
    const GateProgram& p = program(rep); // takes the lock per call
    h = h * 0x100000001b3ull + rep;
    h = h * 0x100000001b3ull + p.ops.size();
  }
  return h;
}

size_t RewriteLibrary::max_cost() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->max_cost_known) {
    for (uint32_t tt = 0; tt < 65536; ++tt)
      impl_->max_cost = std::max(impl_->max_cost,
                                 impl_->build(static_cast<TruthTable>(tt)).ops.size());
    impl_->max_cost_known = true;
  }
  return impl_->max_cost;
}

} // namespace smartly::rewrite
