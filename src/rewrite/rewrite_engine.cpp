#include "rewrite/rewrite_engine.hpp"

#include "aig/aigmap.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/muxtree_walker.hpp" // SweepJournal + apply_sweep_journal
#include "rewrite/cut_enum.hpp"
#include "rewrite/npn.hpp"
#include "rewrite/reservation.hpp"
#include "rewrite/rewrite_lib.hpp"
#include "rtlil/topo.hpp"
#include "sim/packed_sim.hpp"
#include "sweep/equiv_classes.hpp" // shared structural keys
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace smartly::rewrite {

// The engine extracts cut functions under sim::cut_projection and interprets
// them under rewrite::kProjection (cofactors, programs, NPN transforms). The
// two definitions live in layers that must not depend on each other, so pin
// their equality here, where both are visible.
static_assert(sim::cut_projection(0) == kProjection[0] &&
                  sim::cut_projection(1) == kProjection[1] &&
                  sim::cut_projection(2) == kProjection[2] &&
                  sim::cut_projection(3) == kProjection[3],
              "sim::cut_projection and rewrite::kProjection must agree");

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

namespace {

// --- strash probes ----------------------------------------------------------
//
// Price a program gate against the blast AIG without mutating it: compose
// the gate's AIG shape from find_and probes, propagating "no such node"
// (kNoLit). Each helper mirrors the folding of the corresponding Aig
// builder, so a probe resolves exactly when building the gate would not have
// grown the graph.

aig::Lit probe_not(aig::Lit a) { return a == aig::kNoLit ? aig::kNoLit : aig::lit_not(a); }

aig::Lit probe_and(const aig::Aig& g, aig::Lit a, aig::Lit b) {
  if (a == aig::kNoLit || b == aig::kNoLit)
    return aig::kNoLit;
  return g.find_and(a, b);
}

aig::Lit probe_or(const aig::Aig& g, aig::Lit a, aig::Lit b) {
  return probe_not(probe_and(g, probe_not(a), probe_not(b)));
}

aig::Lit probe_xor(const aig::Aig& g, aig::Lit a, aig::Lit b) {
  if (a == aig::kNoLit || b == aig::kNoLit)
    return aig::kNoLit;
  if (a == aig::kFalse)
    return b;
  if (a == aig::kTrue)
    return aig::lit_not(b);
  if (b == aig::kFalse)
    return a;
  if (b == aig::kTrue)
    return aig::lit_not(a);
  if (a == b)
    return aig::kFalse;
  if (a == aig::lit_not(b))
    return aig::kTrue;
  const aig::Lit t0 = probe_and(g, a, probe_not(b));
  const aig::Lit t1 = probe_and(g, probe_not(a), b);
  return probe_not(probe_and(g, probe_not(t0), probe_not(t1)));
}

/// y = s ? t : e (the GateOp convention is y = s ? b : a).
aig::Lit probe_mux(const aig::Aig& g, aig::Lit s, aig::Lit t, aig::Lit e) {
  if (s == aig::kNoLit || t == aig::kNoLit || e == aig::kNoLit)
    return aig::kNoLit;
  if (s == aig::kTrue)
    return t;
  if (s == aig::kFalse)
    return e;
  if (t == e)
    return t;
  if (t == aig::kTrue && e == aig::kFalse)
    return s;
  if (t == aig::kFalse && e == aig::kTrue)
    return aig::lit_not(s);
  return probe_not(probe_and(g, probe_not(probe_and(g, s, t)),
                             probe_not(probe_and(g, probe_not(s), e))));
}

// --- per-round evaluation structures ---------------------------------------

/// Best module bit for one (AIG node, polarity): a bit whose value equals
/// the literal. Rank = (wire creation order, offset), so the choice is a
/// pure function of the module, never of hash-map iteration order.
struct Anchor {
  SigBit bit;
  uint64_t rank = 0;
  bool valid = false;
};

struct LeafRef {
  SigBit bit;
  aig::Lit lit = 0; ///< leaf literal the truth table was extracted over
};

struct BitCandidate {
  bool valid = false;
  uint8_t nleaves = 0;
  std::array<LeafRef, 4> leaves;
  TruthTable tt = 0;
  uint16_t npn_class = 0;
  const GateProgram* prog = nullptr;
  /// Per program op: an anchored live bit computing the op's function (the
  /// optimistic DAG-sharing credit); default-constructed when none.
  std::vector<SigBit> op_reuse;
  uint32_t new_ops = 0;
  /// Estimated AIG gain: cone nodes a commit would free (deref walk over
  /// global fanout counts, root unconditionally freed because its net is
  /// re-driven) minus the AIG cost of the non-reused program gates. The
  /// primary ranking signal; the RTLIL cell gate still decides the commit.
  int gain_est = 0;
};

/// AIG node cost of one program gate (Not is free on complement edges;
/// constant mux legs fold: x?0:g is one AND, x?g:1 is two).
int gate_aig_cost(const GateOp& op) {
  switch (op.type) {
  case CellType::Not: return 0;
  case CellType::And:
  case CellType::Or: return 1;
  case CellType::Mux:
    if (op.b.kind == GateOperand::Const0)
      return 1;
    if (op.a.kind == GateOperand::Const1)
      return 2;
    return 3;
  default: return 3; // Xor
  }
}

/// Cone nodes freed if `root_node`'s net were re-driven: the root plus every
/// interior node whose references all come from freed nodes (leaves stop the
/// walk). `nfan` holds whole-graph reference counts including outputs.
int freed_cone_nodes(const aig::Aig& g, uint32_t root_node, const aig::Lit* leaves,
                     size_t num_leaves, const std::vector<uint32_t>& nfan) {
  std::unordered_map<uint32_t, uint32_t> remaining;
  const auto is_leaf = [&](uint32_t n) {
    for (size_t i = 0; i < num_leaves; ++i)
      if (aig::lit_node(leaves[i]) == n)
        return true;
    return false;
  };
  int freed = 0;
  std::vector<uint32_t> stack{root_node};
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    ++freed;
    for (const aig::Lit f : {g.fanin0(n), g.fanin1(n)}) {
      const uint32_t c = aig::lit_node(f);
      if (!g.is_and(c) || is_leaf(c))
        continue;
      auto it = remaining.find(c);
      if (it == remaining.end())
        it = remaining.emplace(c, nfan[c]).first;
      if (it->second > 0 && --it->second == 0)
        stack.push_back(c);
    }
  }
  return freed;
}

struct RootWork {
  Cell* cell = nullptr;
  std::vector<SigBit> raw;    ///< output port bits, port order
  std::vector<SigBit> canon;  ///< canonical counterparts
  std::vector<aig::Lit> lits; ///< blast literals (AND-backed)
};

/// Stable id of a root: its first canonical output bit's name hash. The
/// recovery layer quarantines roots under this id ("rewrite.eval"), and
/// unit-keyed fault plans key on it. Wire-name-based (not cell-name-based)
/// so the id survives a write_verilog round-trip in repro bundles.
uint64_t root_unit_id(const RootWork& work) {
  const SigBit& bit = work.canon.front();
  return bit.is_wire() ? util::bit_unit_id(bit.wire->name(), bit.offset) : 1;
}

struct RootEval {
  std::vector<BitCandidate> bits;
  bool complete = false;
  bool skipped = false; ///< halt/fault observed before evaluation started
  size_t candidates = 0;
};

/// Deterministic candidate priority: larger estimated AIG gain, then fewer
/// new gates, then shorter program, then smaller cut, then truth table, then
/// leaf literals.
bool better_candidate(const BitCandidate& a, const BitCandidate& b) {
  if (!b.valid)
    return a.valid;
  if (!a.valid)
    return false;
  if (a.gain_est != b.gain_est)
    return a.gain_est > b.gain_est;
  if (a.new_ops != b.new_ops)
    return a.new_ops < b.new_ops;
  if (a.prog->ops.size() != b.prog->ops.size())
    return a.prog->ops.size() < b.prog->ops.size();
  if (a.nleaves != b.nleaves)
    return a.nleaves < b.nleaves;
  if (a.tt != b.tt)
    return a.tt < b.tt;
  for (size_t i = 0; i < a.nleaves; ++i)
    if (a.leaves[i].lit != b.leaves[i].lit)
      return a.leaves[i].lit < b.leaves[i].lit;
  return false;
}

/// Predicted-dead fanin cone of `root` (the RTLIL MFFC): cells none of whose
/// output bits reach an output port or a reader outside the dying set. The
/// cone is bounded (depth/size) and stops at `keep_alive` (leaf and reuse
/// drivers the replacement keeps reading) and `excluded` (cells an earlier
/// plan already claimed or counted). Removal is left to opt_clean; this set
/// only feeds the gain accounting, so a miss costs quality, not correctness.
std::vector<Cell*> predicted_mffc(const rtlil::NetlistIndex& index, Cell* root,
                                  const std::unordered_set<Cell*>& keep_alive,
                                  const std::unordered_set<Cell*>& excluded) {
  constexpr size_t kMaxCone = 64;
  constexpr int kMaxDepth = 6;
  std::vector<Cell*> cone;
  std::unordered_set<Cell*> seen{root};
  std::vector<Cell*> frontier{root};
  for (int depth = 0; depth < kMaxDepth && !frontier.empty() && cone.size() < kMaxCone;
       ++depth) {
    std::vector<Cell*> next;
    for (Cell* c : frontier) {
      for (Port p : c->input_ports()) {
        for (const SigBit& raw : c->port(p)) {
          const SigBit b = index.sigmap()(raw);
          if (!b.is_wire())
            continue;
          Cell* d = index.driver(b);
          if (!d || d->type() == CellType::Dff || seen.count(d) || keep_alive.count(d) ||
              excluded.count(d))
            continue;
          seen.insert(d);
          cone.push_back(d);
          next.push_back(d);
          if (cone.size() >= kMaxCone)
            break;
        }
        if (cone.size() >= kMaxCone)
          break;
      }
      if (cone.size() >= kMaxCone)
        break;
    }
    frontier = std::move(next);
  }

  std::unordered_set<Cell*> dead{root};
  bool changed = true;
  while (changed) {
    changed = false;
    for (Cell* c : cone) {
      if (dead.count(c))
        continue;
      bool dies = true;
      for (const SigBit& raw : c->port(c->output_port())) {
        const SigBit b = index.sigmap()(raw);
        if (!b.is_wire())
          continue;
        if (index.driver(b) != c || index.drives_output_port(b)) {
          dies = false;
          break;
        }
        for (Cell* r : index.readers(b)) {
          if (!dead.count(r)) {
            dies = false;
            break;
          }
        }
        if (!dies)
          break;
      }
      if (dies) {
        dead.insert(c);
        changed = true;
      }
    }
  }

  std::vector<Cell*> out;
  for (Cell* c : cone)
    if (dead.count(c))
      out.push_back(c);
  return out;
}

/// Status of one program op inside a plan. New ops become Shared once
/// materialized, so downstream operand resolution is uniform.
struct OpPlan {
  enum Kind : uint8_t { Reused, Shared, New } kind = New;
  Cell* shared_cell = nullptr;
  std::vector<SigBit> shared_bits; ///< one per group member (Shared only)
};

struct GroupPlan {
  const GateProgram* prog = nullptr;
  std::vector<size_t> members; ///< root output-bit indices, port order
  std::vector<OpPlan> ops;
};

} // namespace

RewriteStats& operator+=(RewriteStats& acc, const RewriteStats& s) {
  acc.rounds += s.rounds;
  acc.aig_nodes += s.aig_nodes;
  acc.cuts += s.cuts;
  acc.roots_evaluated += s.roots_evaluated;
  acc.candidates += s.candidates;
  acc.npn_classes += s.npn_classes;
  acc.rewrites += s.rewrites;
  acc.zero_gain_rewrites += s.zero_gain_rewrites;
  acc.plans_rejected += s.plans_rejected;
  acc.plans_noop += s.plans_noop;
  acc.cells_added += s.cells_added;
  acc.gates_reused += s.gates_reused;
  acc.cells_shared += s.cells_shared;
  acc.predicted_dead += s.predicted_dead;
  acc.skipped_roots += s.skipped_roots;
  acc.quarantined += s.quarantined;
  acc.halted += s.halted;
  return acc; // threads_used intentionally untouched
}

bool same_work(const RewriteStats& a, const RewriteStats& b) {
  return a.rounds == b.rounds && a.aig_nodes == b.aig_nodes && a.cuts == b.cuts &&
         a.roots_evaluated == b.roots_evaluated && a.candidates == b.candidates &&
         a.npn_classes == b.npn_classes && a.rewrites == b.rewrites &&
         a.zero_gain_rewrites == b.zero_gain_rewrites &&
         a.plans_rejected == b.plans_rejected && a.plans_noop == b.plans_noop &&
         a.cells_added == b.cells_added &&
         a.gates_reused == b.gates_reused && a.cells_shared == b.cells_shared &&
         a.predicted_dead == b.predicted_dead && a.skipped_roots == b.skipped_roots &&
         a.quarantined == b.quarantined && a.halted == b.halted;
  // threads_used intentionally excluded: it reflects the machine, not the work.
}

RewriteStats rewrite_sweep(rtlil::Module& module, const RewriteOptions& options) {
  const obs::Span engine_span("rewrite", "rewrite.sweep", "cells",
                              static_cast<uint64_t>(module.cell_count()));
  RewriteStats stats;
  rtlil::NetlistIndex index(module);
  index.sigmap().flatten();
  util::ThreadPool pool(util::resolve_thread_count(options.threads));
  stats.threads_used = pool.size();

  const NpnTable& npn = NpnTable::instance();
  const RewriteLibrary& library = RewriteLibrary::instance();
  std::unordered_set<uint16_t> classes_seen;
  // Per-cell reservation claims, persistent across rounds: begin_round bumps
  // the epoch, which logically frees every claim of the previous round.
  ClaimTable claims;

  util::ResourceGuard* guard = options.guard;
  if (guard != nullptr)
    guard->set_growth_baseline(module.cell_count());

  for (size_t round = 0; round < options.max_rounds; ++round) {
    // Round barrier: deterministic budgets (incl. the growth cap against the
    // post-commit cell count) arm the sticky halt flag only here.
    if (guard != nullptr && guard->checkpoint(module.cell_count())) {
      ++stats.halted;
      guard->note_halted_engine();
      break;
    }
    if (options.quarantine != nullptr &&
        options.quarantine->contains("rewrite.round", round + 1)) {
      // A previously faulting round: skip it, keep iterating.
      ++stats.quarantined;
      continue;
    }
    if (util::fault_point("rewrite.round", round + 1) != util::FaultAction::None) {
      if (guard != nullptr) {
        guard->halt(util::BudgetKind::Fault);
        guard->note_fault("rewrite.round", round + 1);
        guard->note_halted_engine();
      }
      ++stats.halted;
      break;
    }
    ++stats.rounds;
    const obs::Span round_span("rewrite", "rewrite.round", "round",
                               static_cast<uint64_t>(round + 1));
    const aig::AigMap blast = [&] {
      const obs::Span s("rewrite", "rewrite.blast");
      return aig::aigmap(module, index);
    }();
    if (round == 0)
      stats.aig_nodes = blast.aig.num_nodes();
    const CutSet cutset = [&] {
      const obs::Span s("rewrite", "rewrite.cuts");
      return enumerate_cuts(blast.aig, CutOptions{options.cut_limit});
    }();
    stats.cuts += cutset.total;

    // Whole-graph reference counts (fanins + outputs) for the candidate
    // ranking's deref walks.
    std::vector<uint32_t> nfan(blast.aig.num_nodes(), 0);
    for (uint32_t n = 0; n < blast.aig.num_nodes(); ++n) {
      if (!blast.aig.is_and(n))
        continue;
      ++nfan[aig::lit_node(blast.aig.fanin0(n))];
      ++nfan[aig::lit_node(blast.aig.fanin1(n))];
    }
    for (size_t i = 0; i < blast.aig.num_outputs(); ++i)
      ++nfan[aig::lit_node(blast.aig.output(static_cast<int>(i)))];

    // Wire creation order: the deterministic tie-break rank behind anchor
    // selection and group keys (bit hashes are pointer-based and would leak
    // allocator layout into the result).
    std::unordered_map<const rtlil::Wire*, uint64_t> wire_order;
    wire_order.reserve(module.wires().size());
    for (const auto& w : module.wires())
      wire_order.emplace(w.get(), wire_order.size());
    const auto bit_rank = [&](const SigBit& b) {
      return (wire_order.at(b.wire) << 16) | static_cast<uint64_t>(b.offset & 0xffff);
    };

    // Anchors: AIG node + polarity -> best module bit.
    std::vector<std::array<Anchor, 2>> anchors(blast.aig.num_nodes());
    for (const auto& entry : blast.bits) {
      Anchor& slot = anchors[aig::lit_node(entry.second)]
                            [aig::lit_compl(entry.second) ? 1 : 0];
      const uint64_t rank = bit_rank(entry.first);
      if (!slot.valid || rank < slot.rank)
        slot = {entry.first, rank, true};
    }

    // Root work list: combinational cells whose every output bit is a live,
    // canonically self-driven wire bit backed by an AND node.
    std::vector<RootWork> roots;
    for (const auto& cptr : module.cells()) {
      Cell* cell = cptr.get();
      if (cell->type() == CellType::Dff)
        continue;
      RootWork work;
      work.cell = cell;
      bool ok = true, any_read = false;
      for (const SigBit& raw : cell->port(cell->output_port())) {
        const SigBit c = index.sigmap()(raw);
        if (!c.is_wire() || index.driver(c) != cell) {
          ok = false;
          break;
        }
        const auto it = blast.bits.find(c);
        if (it == blast.bits.end() || !blast.aig.is_and(aig::lit_node(it->second))) {
          ok = false;
          break;
        }
        if (index.fanout(c) > 0)
          any_read = true;
        work.raw.push_back(raw);
        work.canon.push_back(c);
        work.lits.push_back(it->second);
      }
      if (ok && any_read && !work.raw.empty()) {
        if (options.quarantine != nullptr &&
            options.quarantine->contains("rewrite.eval", root_unit_id(work))) {
          // Quarantined root: never evaluated. The work list is built in
          // module cell order, so the filter is thread-count-deterministic.
          ++stats.quarantined;
          continue;
        }
        roots.push_back(std::move(work));
      }
    }
    stats.roots_evaluated += roots.size();

    // --- barrier-free pipelined evaluation + commit -------------------------
    //
    // Workers evaluate roots in parallel exactly as before, but instead of
    // waiting for every evaluation to finish and then committing behind a
    // round barrier, each worker reserves its candidate's MFFC (plus the
    // boundary fanout frontier the replacement keeps reading) in the atomic
    // claim table and deposits the result into a CommitSequencer that drains
    // commits in canonical root order the moment the frontier allows. All
    // commit *decisions* and all module mutation happen inside the
    // sequencer's critical section, in exactly the order the old sequential
    // commit loop used — reservations only steer scheduling (losers release
    // and requeue until the winning root resolves), so netlists, stats, and
    // decision traces stay byte-identical at every thread count.
    //
    // Claim ownership is tie-broken by canonical root order: a root that
    // finds a cell held by a lower-ordered root releases everything and
    // requeues (it would lose the commit-time revalidation anyway if that
    // root commits); a cell held by a higher-ordered root is stolen. Dead
    // tombstones left by committed roots never force a requeue — the
    // sequencer's deterministic revalidation is the authority, the claim
    // table only an early, cheap approximation of it.

    // Structural-key map over the round-start module (the notion shared with
    // opt_merge and the fraig pre-merge): planned cells fold onto existing
    // twins instead of duplicating them. Built before the pipeline starts;
    // the sequencer maintains it as commits materialize cells.
    std::unordered_map<Hash128, Cell*, Hash128Hasher> struct_map;
    struct_map.reserve(module.cell_count());
    for (const auto& cptr : module.cells())
      if (cptr->type() != CellType::Dff)
        struct_map.emplace(sweep::cell_structural_key(*cptr, index.sigmap()), cptr.get());

    claims.begin_round(index.topo_position_bound());

    struct RootSlot {
      RootEval eval;
      bool evaluated = false;        ///< evaluation ran (it runs exactly once)
      uint32_t retries = 0;          ///< reservation attempts so far
      std::vector<uint32_t> reserve; ///< claim slots: root + MFFC + frontier
    };
    std::vector<RootSlot> slots(roots.size());

    // Round-scoped commit state, owned by the sequencer's critical section:
    // only commit_root below touches any of it.
    std::unordered_set<Cell*> claimed;           // roots committed for removal
    std::unordered_set<Cell*> counted_dead;      // MFFC cells already credited
    std::unordered_map<Cell*, int> new_cell_pos; // cells materialized this round
    opt::SweepJournal journal;
    size_t positive_commits = 0, total_commits = 0, round_skipped = 0;
    const bool debug = std::getenv("SMARTLY_REWRITE_DEBUG") != nullptr;

    const auto evaluate_root = [&](size_t ri) {
      const RootWork& work = roots[ri];
      RootEval& eval = slots[ri].eval;
      // Mid-phase halts come only from deadline/cancel — deterministic
      // budgets arm the sticky flag at the round barrier above, and the
      // "rewrite.eval" fault point fires in the commit sequencer, in
      // canonical order, so the same roots fault at every thread count.
      if (guard != nullptr && guard->poll()) {
        eval.skipped = true;
        return;
      }
      const obs::Span root_span("rewrite", "rewrite.eval", "root", root_unit_id(work));
      const int root_pos = index.topo_position(work.cell);
      // An anchor is wireable from this root's replacement (which takes the
      // root's topo slot) only if its driver sits strictly before the root.
      // Structurally identical cells strash to one node, so an anchor can
      // sit anywhere in the netlist, including after the root.
      const auto wireable = [&](const SigBit& bit) {
        Cell* drv = index.driver(bit);
        if (drv == work.cell)
          return false;
        if (!drv || drv->type() == CellType::Dff)
          return true;
        return index.topo_position(drv) < root_pos;
      };
      eval.bits.resize(work.raw.size());
      eval.complete = true;
      for (size_t j = 0; j < work.raw.size(); ++j) {
        const aig::Lit root_lit = work.lits[j];
        const uint32_t node = aig::lit_node(root_lit);
        BitCandidate best;
        const std::vector<Cut>& cuts = cutset.cuts[node];
        for (size_t ci = 0; ci + 1 < cuts.size(); ++ci) { // last cut is trivial
          const Cut& cut = cuts[ci];
          BitCandidate cand;
          cand.nleaves = cut.size;
          bool usable = true;
          aig::Lit leaf_lits[4];
          for (size_t li = 0; li < cut.size; ++li) {
            const auto& slots = anchors[cut.leaves[li]];
            const Anchor& a = slots[0].valid ? slots[0] : slots[1];
            if (!a.valid || !wireable(a.bit)) {
              usable = false;
              break;
            }
            cand.leaves[li].bit = a.bit;
            cand.leaves[li].lit = aig::mk_lit(cut.leaves[li], !slots[0].valid);
            leaf_lits[li] = cand.leaves[li].lit;
          }
          if (!usable ||
              !sim::cut_truth_table(blast.aig, root_lit, leaf_lits, cut.size, cand.tt))
            continue;
          cand.valid = true;
          cand.npn_class = npn.class_id(cand.tt);
          cand.prog = &library.program(cand.tt);
          ++eval.candidates;

          // Optimistic DAG-sharing: compose each op's AIG literal from
          // strash probes; an anchored wireable bit of the right polarity is
          // a reuse credit (validated again at the sequential barrier).
          const GateProgram& prog = *cand.prog;
          std::vector<aig::Lit> op_lits(prog.ops.size(), aig::kNoLit);
          cand.op_reuse.assign(prog.ops.size(), SigBit());
          const auto operand_lit = [&](const GateOperand& o) -> aig::Lit {
            switch (o.kind) {
            case GateOperand::Const0: return aig::kFalse;
            case GateOperand::Const1: return aig::kTrue;
            case GateOperand::Leaf: return leaf_lits[o.index];
            case GateOperand::Node: return op_lits[o.index];
            }
            return aig::kNoLit;
          };
          for (size_t k = 0; k < prog.ops.size(); ++k) {
            const GateOp& op = prog.ops[k];
            aig::Lit lit = aig::kNoLit;
            switch (op.type) {
            case CellType::Not:
              lit = probe_not(operand_lit(op.a));
              break;
            case CellType::And:
              lit = probe_and(blast.aig, operand_lit(op.a), operand_lit(op.b));
              break;
            case CellType::Or:
              lit = probe_or(blast.aig, operand_lit(op.a), operand_lit(op.b));
              break;
            case CellType::Xor:
              lit = probe_xor(blast.aig, operand_lit(op.a), operand_lit(op.b));
              break;
            case CellType::Mux:
              lit = probe_mux(blast.aig, operand_lit(op.s), operand_lit(op.b),
                              operand_lit(op.a));
              break;
            default:
              break;
            }
            op_lits[k] = lit;
            if (lit != aig::kNoLit && lit != aig::kFalse && lit != aig::kTrue) {
              const Anchor& a = anchors[aig::lit_node(lit)][aig::lit_compl(lit) ? 1 : 0];
              if (a.valid && wireable(a.bit)) {
                cand.op_reuse[k] = a.bit;
                continue;
              }
            }
            ++cand.new_ops;
          }
          // A candidate whose output resolves to the root's own literal
          // reconstructs the existing implementation (or merges onto a twin
          // fraig already handles): committing it could never shrink the
          // graph, and it would shadow genuinely restructuring candidates.
          aig::Lit out_lit = aig::kNoLit;
          switch (prog.out.kind) {
          case GateOperand::Const0: out_lit = aig::kFalse; break;
          case GateOperand::Const1: out_lit = aig::kTrue; break;
          case GateOperand::Leaf: out_lit = leaf_lits[prog.out.index]; break;
          case GateOperand::Node: out_lit = op_lits[prog.out.index]; break;
          }
          if (out_lit == root_lit)
            continue;
          int build_cost = 0;
          for (size_t k = 0; k < prog.ops.size(); ++k)
            if (!cand.op_reuse[k].is_wire())
              build_cost += gate_aig_cost(prog.ops[k]);
          cand.gain_est =
              freed_cone_nodes(blast.aig, node, leaf_lits, cut.size, nfan) - build_cost;
          if (better_candidate(cand, best))
            best = std::move(cand);
        }
        if (!best.valid) {
          eval.complete = false;
          break;
        }
        eval.bits[j] = std::move(best);
      }
      if (!eval.complete)
        return;

      // Reservation set: the root, its predicted MFFC (approximated against
      // the round-start netlist — the sequencer recomputes it against the
      // true commit-time overlays), and the boundary fanout frontier (the
      // leaf and reuse drivers the replacement keeps reading). Claim slots
      // are round-start topo positions, dense in [0, topo_position_bound).
      std::unordered_set<Cell*> boundary;
      for (const BitCandidate& cand : eval.bits) {
        for (size_t li = 0; li < cand.nleaves; ++li)
          if (Cell* d = index.driver(cand.leaves[li].bit))
            boundary.insert(d);
        for (const SigBit& bit : cand.op_reuse)
          if (bit.is_wire())
            if (Cell* d = index.driver(bit))
              boundary.insert(d);
      }
      std::vector<uint32_t>& reserve = slots[ri].reserve;
      const auto add_claim = [&](Cell* c) {
        const int pos = index.topo_position(c);
        if (pos >= 0)
          reserve.push_back(static_cast<uint32_t>(pos));
      };
      add_claim(work.cell);
      for (Cell* c : predicted_mffc(index, work.cell, boundary, {}))
        add_claim(c);
      for (Cell* c : boundary)
        add_claim(c);
      std::sort(reserve.begin(), reserve.end());
      reserve.erase(std::unique(reserve.begin(), reserve.end()), reserve.end());
    };
    // Commit one root inside the sequencer's critical section. Runs for
    // every deposited root in strictly canonical order; every decision below
    // reads only sequencer-owned overlays and round-start snapshots, never
    // claim-table state, so the result is a pure function of the module.
    const auto commit_root = [&](size_t ri) {
      const RootWork& work = roots[ri];
      RootSlot& slot = slots[ri];
      RootEval& eval = slot.eval;
      Cell* root = work.cell;
      const uint32_t owner = static_cast<uint32_t>(ri);
      stats.candidates += eval.candidates;
      // Deterministic fault point: one "rewrite.eval" event per root, fired
      // here in canonical order instead of from the parallel evaluation
      // tasks, so event-counter plans hit the same root — and leave the same
      // committed prefix — at every thread count. A throw propagates out of
      // the depositing worker and poisons the sequencer.
      if (!eval.skipped && util::fault_unknown("rewrite.eval", root_unit_id(work)))
        eval.skipped = true;
      if (eval.skipped) {
        ++round_skipped;
        claims.release(owner, slot.reserve);
        return;
      }
      if (eval.complete)
        for (const BitCandidate& c : eval.bits)
          classes_seen.insert(c.npn_class);
      if (debug)
        std::fprintf(stderr, "root %s (%s): complete=%d claimed=%d dead=%d\n",
                     root->name().c_str(), rtlil::cell_type_name(root->type()),
                     (int)eval.complete, (int)claimed.count(root),
                     (int)counted_dead.count(root));
      if (!eval.complete || claimed.count(root) || counted_dead.count(root)) {
        claims.release(owner, slot.reserve);
        return;
      }
      const int root_pos = index.topo_position(root);

      // Re-validate against this barrier's claims: a bit whose driver was
      // already credited as dead must not be read (its death is priced into
      // an earlier gain), and a barrier-new driver must sit before the root.
      const auto driver_valid = [&](Cell* d) {
        if (!d || d->type() == CellType::Dff)
          return true;
        if (counted_dead.count(d))
          return false;
        const auto it = new_cell_pos.find(d);
        const int pos = it != new_cell_pos.end() ? it->second : index.topo_position(d);
        return pos >= 0 && pos < root_pos;
      };
      bool rejected = false;
      for (BitCandidate& cand : eval.bits) {
        for (size_t li = 0; li < cand.nleaves && !rejected; ++li)
          if (!driver_valid(index.driver(cand.leaves[li].bit))) {
            if (debug)
              std::fprintf(stderr, "  reject: leaf %zu of tt=%04x\n", li, cand.tt);
            rejected = true;
          }
        if (rejected)
          break;
        for (size_t k = 0; k < cand.op_reuse.size(); ++k) {
          SigBit& bit = cand.op_reuse[k];
          if (bit.is_wire() && !driver_valid(index.driver(bit))) {
            bit = SigBit(); // drop the credit; the op is materialized instead
            ++cand.new_ops;
          }
        }
      }
      if (rejected) {
        claims.release(owner, slot.reserve);
        return; // the next round re-evaluates against the updated netlist
      }

      // Group the output bits: members sharing (program, reuse pattern, mux
      // selects) become one wide cell per non-reused op. std::map keys keep
      // group order a pure function of the module.
      std::map<std::vector<uint64_t>, GroupPlan> groups;
      for (size_t j = 0; j < eval.bits.size(); ++j) {
        const BitCandidate& cand = eval.bits[j];
        std::vector<uint64_t> key{cand.tt};
        uint64_t reuse_mask = 0;
        for (size_t k = 0; k < cand.op_reuse.size(); ++k)
          if (cand.op_reuse[k].is_wire())
            reuse_mask |= 1ull << k;
        key.push_back(reuse_mask);
        // A Mux cell has a single select bit, so members only vectorize when
        // their selects resolve identically: key on the concrete select bit
        // (leaf select) or on the bits of the select cone's support
        // (computed select — identical support bits give identical cones).
        for (const GateOp& op : cand.prog->ops) {
          if (op.type != CellType::Mux)
            continue;
          if (op.s.kind == GateOperand::Leaf) {
            key.push_back(bit_rank(cand.leaves[op.s.index].bit));
          } else if (op.s.kind == GateOperand::Node) {
            const uint8_t support = tt_support(cand.prog->ops[op.s.index].tt);
            for (uint8_t v = 0; v < 4; ++v)
              if (support & (1u << v))
                key.push_back(bit_rank(cand.leaves[v].bit));
          }
        }
        GroupPlan& group = groups[std::move(key)];
        group.prog = cand.prog;
        group.members.push_back(j);
      }

      // Operand resolution once a group's earlier ops are decided. `m` is
      // the member's position within the group (selects the lane of a
      // Shared op's output vector).
      const auto member_operand = [&](const GroupPlan& group, const GateOperand& o,
                                      size_t j, size_t m) -> SigBit {
        const BitCandidate& cand = eval.bits[j];
        switch (o.kind) {
        case GateOperand::Const0: return SigBit(State::S0);
        case GateOperand::Const1: return SigBit(State::S1);
        case GateOperand::Leaf: return cand.leaves[o.index].bit;
        case GateOperand::Node: {
          const OpPlan& src = group.ops[o.index];
          return src.kind == OpPlan::Reused ? cand.op_reuse[o.index]
                                            : src.shared_bits[m];
        }
        }
        return SigBit(State::S0);
      };

      // Input ports of one materialized group op, shared verbatim by the
      // structural-key dry probe and the real cell so the probed key can
      // never diverge from the key of the cell actually built. An op whose
      // operands are identical across the word (shared selector logic,
      // typically) gets width 1.
      struct OpPorts {
        SigSpec a, b;
        SigBit s;
        int width = 0;
      };
      const auto build_op_ports = [&](const GroupPlan& group, const GateOp& op) {
        OpPorts ports;
        const bool needs_b = op.type != CellType::Not;
        bool uniform = true;
        for (size_t m = 0; m < group.members.size(); ++m) {
          const SigBit ab = member_operand(group, op.a, group.members[m], m);
          uniform = uniform && (m == 0 || ab == ports.a[0]);
          ports.a.append(ab);
          if (needs_b) {
            const SigBit bb = member_operand(group, op.b, group.members[m], m);
            uniform = uniform && (m == 0 || bb == ports.b[0]);
            ports.b.append(bb);
          }
        }
        ports.width = uniform ? 1 : static_cast<int>(group.members.size());
        if (uniform) {
          ports.a = SigSpec(ports.a[0]);
          if (needs_b)
            ports.b = SigSpec(ports.b[0]);
        }
        if (op.type == CellType::Mux)
          ports.s = member_operand(group, op.s, group.members.front(), 0);
        return ports;
      };
      const auto connect_op_ports = [](Cell& cell, const GateOp& op, const OpPorts& ports,
                                       SigSpec y) {
        cell.set_port(Port::A, ports.a);
        if (op.type != CellType::Not)
          cell.set_port(Port::B, ports.b);
        if (op.type == CellType::Mux)
          cell.set_port(Port::S, ports.s);
        cell.set_port(Port::Y, std::move(y));
        cell.infer_widths();
      };

      // Plan each group's ops: Reused (AIG credit), Shared (structural twin)
      // or New. Ops whose operands reference a New op cannot be probed — no
      // twin can exist for wires not yet created.
      bool abort_plan = false;
      size_t new_cells = 0, reused_ops = 0, shared_ops = 0;
      std::unordered_set<Cell*> keep_alive;
      for (auto& group_entry : groups) {
        GroupPlan& group = group_entry.second;
        const GateProgram& prog = *group.prog;
        const BitCandidate& first = eval.bits[group.members.front()];
        group.ops.resize(prog.ops.size());
        for (size_t k = 0; k < prog.ops.size() && !abort_plan; ++k) {
          if (first.op_reuse[k].is_wire()) {
            group.ops[k].kind = OpPlan::Reused;
            ++reused_ops;
            continue;
          }
          const GateOp& op = prog.ops[k];
          const auto resolvable = [&](const GateOperand& o) {
            return o.kind != GateOperand::Node || group.ops[o.index].kind != OpPlan::New;
          };
          const bool needs_b = op.type != CellType::Not;
          if (resolvable(op.a) && (!needs_b || resolvable(op.b)) &&
              (op.type != CellType::Mux || resolvable(op.s))) {
            // Dry probe with a detached cell: ports built by the same helper
            // the materialization uses, no module registration.
            const OpPorts ports = build_op_ports(group, op);
            Cell temp(&module, "$rewrite_probe", op.type);
            connect_op_ports(temp, op, ports,
                             SigSpec(std::vector<SigBit>(
                                 static_cast<size_t>(ports.width), SigBit(State::S0))));
            const auto hit =
                struct_map.find(sweep::cell_structural_key(temp, index.sigmap()));
            if (hit != struct_map.end()) {
              Cell* twin = hit->second;
              if (twin == root) {
                // The plan reproduces the root's own structure: a no-op
                // rewrite that would only churn names. Abort.
                if (debug)
                  std::fprintf(stderr, "  abort: op %zu of tt=%04x reproduces root\n",
                               k, first.tt);
                abort_plan = true;
                break;
              }
              bool twin_ok =
                  !claimed.count(twin) && driver_valid(twin) &&
                  sweep::cell_structurally_identical(temp, *twin, index.sigmap());
              if (twin_ok && !new_cell_pos.count(twin)) {
                for (const SigBit& raw : twin->port(twin->output_port())) {
                  const SigBit c = index.sigmap()(raw);
                  if (!c.is_wire() || index.driver(c) != twin) {
                    twin_ok = false;
                    break;
                  }
                }
              }
              if (twin_ok) {
                group.ops[k].kind = OpPlan::Shared;
                group.ops[k].shared_cell = twin;
                std::vector<SigBit>& bits = group.ops[k].shared_bits;
                for (const SigBit& raw : twin->port(twin->output_port()))
                  bits.push_back(index.sigmap()(raw));
                if (bits.size() == 1 && group.members.size() > 1)
                  bits.assign(group.members.size(), bits[0]); // uniform op
                keep_alive.insert(twin);
                ++shared_ops;
                continue;
              }
            }
          }
          group.ops[k].kind = OpPlan::New;
          ++new_cells;
        }
        if (abort_plan)
          break;
      }
      if (abort_plan) {
        ++stats.plans_noop;
        claims.release(owner, slot.reserve);
        return;
      }

      // Gain in RTLIL cells: the root plus its predicted-dead cone against
      // the cells actually materialized.
      for (const BitCandidate& cand : eval.bits) {
        for (size_t li = 0; li < cand.nleaves; ++li)
          if (Cell* d = index.driver(cand.leaves[li].bit))
            keep_alive.insert(d);
        for (const SigBit& bit : cand.op_reuse)
          if (bit.is_wire())
            if (Cell* d = index.driver(bit))
              keep_alive.insert(d);
      }
      std::unordered_set<Cell*> excluded(claimed);
      excluded.insert(counted_dead.begin(), counted_dead.end());
      const std::vector<Cell*> dead = predicted_mffc(index, root, keep_alive, excluded);
      const long gain = 1 + static_cast<long>(dead.size()) - static_cast<long>(new_cells);
      // Cell-neutral commits must still shrink the AIG (the paper's area
      // metric): the summed per-bit estimates gate out pure churn.
      long plan_gain_est = 0;
      for (const BitCandidate& cand : eval.bits)
        plan_gain_est += cand.gain_est;
      if (debug)
        std::fprintf(stderr, "  plan: gain=%ld (dead=%zu new=%zu) est=%ld\n", gain,
                     dead.size(), new_cells, plan_gain_est);
      if (gain < 0 || (gain == 0 && !(options.zero_gain && plan_gain_est > 0))) {
        ++stats.plans_rejected;
        claims.release(owner, slot.reserve);
        return;
      }

      // --- materialize ----------------------------------------------------
      // New cells take the root's topo position; journal append order is
      // program order, which compact_topo's stable sort preserves, so
      // intra-plan dependencies stay topologically valid.
      const obs::Span commit_span("rewrite", "rewrite.commit", "root",
                                  root_unit_id(work));
      for (auto& group_entry : groups) {
        GroupPlan& group = group_entry.second;
        const GateProgram& prog = *group.prog;
        for (size_t k = 0; k < prog.ops.size(); ++k) {
          if (group.ops[k].kind != OpPlan::New)
            continue;
          const GateOp& op = prog.ops[k];
          const OpPorts ports = build_op_ports(group, op);
          rtlil::Wire* wire = module.new_wire(ports.width, "$rewrite");
          Cell* cell = module.add_cell(op.type);
          connect_op_ports(*cell, op, ports, SigSpec(wire));
          journal.added.push_back({cell, root_pos});
          new_cell_pos.emplace(cell, root_pos);
          struct_map.emplace(sweep::cell_structural_key(*cell, index.sigmap()), cell);
          group.ops[k].kind = OpPlan::Shared;
          group.ops[k].shared_cell = cell;
          std::vector<SigBit>& bits = group.ops[k].shared_bits;
          if (ports.width == 1)
            bits.assign(group.members.size(), SigBit(wire, 0));
          else
            for (int i = 0; i < ports.width; ++i)
              bits.emplace_back(wire, i);
          ++stats.cells_added;
        }
      }

      SigSpec lhs, rhs;
      for (const auto& group_entry : groups) {
        const GroupPlan& group = group_entry.second;
        for (size_t m = 0; m < group.members.size(); ++m) {
          const size_t j = group.members[m];
          lhs.append(work.raw[j]);
          rhs.append(member_operand(group, group.prog->out, j, m));
        }
      }
      journal.removed.push_back(root);
      journal.connects.emplace_back(lhs, rhs);

      // Per-commit gain histogram: fed inside the sequencer's critical
      // section, in canonical root order, from deterministic plan accounting.
      static obs::Histogram& h_gain = obs::histogram("rewrite.gain");
      h_gain.observe(static_cast<uint64_t>(gain));
      claimed.insert(root);
      for (Cell* c : dead)
        counted_dead.insert(c);
      ++total_commits;
      if (gain > 0)
        ++positive_commits;
      ++stats.rewrites;
      if (gain == 0)
        ++stats.zero_gain_rewrites;
      stats.gates_reused += reused_ops;
      stats.cells_shared += shared_ops;
      stats.predicted_dead += dead.size();

      // Settle claims: the committed root and its credited-dead cone become
      // Dead tombstones for the rest of the round; the boundary frontier is
      // released for later roots to claim.
      std::vector<uint32_t> dead_slots;
      const auto add_dead = [&](Cell* c) {
        const int pos = index.topo_position(c);
        if (pos >= 0)
          dead_slots.push_back(static_cast<uint32_t>(pos));
      };
      add_dead(root);
      for (Cell* c : dead)
        add_dead(c);
      claims.settle(owner, slot.reserve, dead_slots);
    };

    CommitSequencer sequencer(roots.size(), commit_root);
    static obs::Counter& m_conflicts = obs::counter("rewrite.reservation_conflicts");
    // Past this many lost reservations a task deposits claimless: claims are
    // advisory and the sequencer revalidates every commit, so correctness
    // (and byte-identity) never depend on holding them — the cap only bounds
    // spinning behind a slow-to-resolve lower-ordered root. Kept small: on
    // dense million-node graphs a contended root can otherwise burn its
    // whole worker on retries (observed ~30 retries/root on the scale
    // families with a 256 cap), starving real evaluation work.
    constexpr uint32_t kMaxReserveRetries = 4;

    bool faulted = false;
    try {
      const obs::Span pipe_span("rewrite", "rewrite.pipeline", "roots",
                                static_cast<uint64_t>(roots.size()));
      pool.run_requeue_batch(roots.size(), [&](int, size_t ri) {
        RootSlot& slot = slots[ri];
        if (!slot.evaluated) {
          evaluate_root(ri);
          slot.evaluated = true;
        }
        if (slot.eval.complete && !slot.eval.skipped && !slot.reserve.empty() &&
            slot.retries < kMaxReserveRetries) {
          if (claims.acquire(static_cast<uint32_t>(ri), slot.reserve) ==
              ClaimTable::Acquire::Conflict) {
            // A lower-ordered root holds part of this candidate's cone; it
            // resolves (commits or releases) strictly earlier in canonical
            // order, so drain the worker's other local work first and retry.
            m_conflicts.add();
            ++slot.retries;
            std::this_thread::yield();
            return util::ThreadPool::TaskVerdict::Requeue;
          }
        }
        sequencer.deposit(ri);
        return util::ThreadPool::TaskVerdict::Done;
      });
    } catch (const util::FaultInjected& e) {
      // The "rewrite.eval" fault point fires inside the sequencer in
      // canonical order, so the committed prefix — already materialized and
      // journaled — is identical at every thread count. Injected faults are
      // absorbed; real errors keep propagating.
      faulted = true;
      if (guard != nullptr)
        guard->note_fault(e.site().c_str(), e.unit());
    }

    if (!faulted) {
      stats.skipped_roots += round_skipped;
      if (guard != nullptr && round_skipped > 0)
        guard->note_skipped_rewrites(round_skipped);
    }
    if (!journal.empty()) {
      // Applied even on a faulted round: the committed prefix's cells and
      // connects are already in the module, and the index must follow them
      // for the post-halt consistency check.
      opt::apply_sweep_journal(module, index, journal);
      journal.clear();
    }
    if (faulted) {
      if (guard != nullptr) {
        guard->halt(util::BudgetKind::Fault);
        guard->note_halted_engine();
      }
      ++stats.halted;
      break;
    }
    if (total_commits == 0 || positive_commits == 0)
      break; // idle round, or a zero-gain-only round (committed once, stop)
  }

  stats.npn_classes = classes_seen.size();
  if (options.check_index && !rtlil::index_consistent(module, index))
    throw std::logic_error("rewrite: incremental NetlistIndex diverged from rebuild");

  // Deterministic totals from the stats struct (identical at every thread
  // count), published once per sweep.
  static obs::Counter& m_rounds = obs::counter("rewrite.rounds");
  static obs::Counter& m_roots = obs::counter("rewrite.roots_evaluated");
  static obs::Counter& m_rewrites = obs::counter("rewrite.rewrites");
  static obs::Counter& m_added = obs::counter("rewrite.cells_added");
  static obs::Counter& m_rejected = obs::counter("rewrite.plans_rejected");
  m_rounds.add(stats.rounds);
  m_roots.add(stats.roots_evaluated);
  m_rewrites.add(stats.rewrites);
  m_added.add(stats.cells_added);
  m_rejected.add(stats.plans_rejected);
  return stats;
}

} // namespace smartly::rewrite
