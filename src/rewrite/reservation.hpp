// MFFC reservation locking for barrier-free parallel rewriting.
//
// The rewrite engine evaluates roots in parallel and used to serialize every
// commit at a round barrier. This layer removes the barrier while keeping
// byte-identity at every thread count, by splitting the problem in two:
//
//  * ClaimTable — per-cell atomic (epoch, state, owner) claim words, after
//    the Galois aigRewriting per-node (threadId, travId) reservation state.
//    A worker that has evaluated a root claims the root, its predicted MFFC,
//    and the boundary fanout frontier (the drivers its replacement keeps
//    reading). Conflicts are tie-broken by canonical root order: the
//    lower-ordered root always wins, losers release everything and requeue.
//    Claims are *advisory*: they schedule work away from conflicts early and
//    cheaply, but never decide a commit — so the schedule-dependent parts
//    (who conflicted with whom, and when) can never leak into the result.
//
//  * CommitSequencer — a reorder buffer that turns out-of-order deposits
//    into strictly canonical-order commits. Workers deposit evaluation
//    results the moment they finish; the depositing worker drains the commit
//    frontier as far as consecutive deposits allow, running each commit
//    inside the sequencer's critical section. Every netlist mutation and
//    every commit *decision* therefore happens in exactly the order the old
//    single-threaded commit loop used — which is what makes netlists, stats,
//    and decision traces byte-identical at 1/2/4/8 threads — while commits
//    overlap freely with the evaluation of later roots instead of waiting
//    for the round to drain.
//
// Claim-word layout (64 bits):
//
//      [ epoch : 32 ][ state : 2 ][ owner : 30 ]
//
// `epoch` is bumped once per round by begin_round(); any word carrying a
// stale epoch reads as Free, so rounds reset every claim in O(1) without
// touching the table. `state` is Free / Held / Dead; Dead marks cells the
// sequencer has committed or credited as MFFC-dead — later roots overlapping
// a Dead cell proceed to deposit (the tombstone never resolves, so waiting
// would livelock) and the sequencer's deterministic revalidation rejects
// them. `owner` is the canonical root index holding the claim.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace smartly::rewrite {

class ClaimTable {
public:
  /// Result of an acquire attempt over a whole reservation set.
  enum class Acquire : uint8_t {
    Won,     ///< every slot is now Held by `owner` (or Dead — see header)
    Conflict ///< a lower-ordered owner holds a slot; everything was released
  };

  /// Start a round: bump the epoch (logically freeing every claim) and make
  /// sure slots [0, cell_bound) exist. Single-threaded (round barrier only).
  void begin_round(size_t cell_bound);

  /// Claim every slot in `slots` for `owner` (a canonical root index).
  /// Tie-break: a slot Held by a lower owner is a Conflict — all slots
  /// already taken in this call are released and the caller should requeue.
  /// A slot Held by a *higher* owner is stolen (the higher root will detect
  /// the theft on its next attempt, or simply deposit; claims are advisory).
  /// Dead slots are skipped. A final verification pass re-checks the whole
  /// set so a steal that raced in mid-acquire is still reported as Conflict.
  Acquire acquire(uint32_t owner, const std::vector<uint32_t>& slots);

  /// Release every slot in `slots` still held by `owner` (CAS-guarded: slots
  /// meanwhile stolen by a lower owner are left alone).
  void release(uint32_t owner, const std::vector<uint32_t>& slots);

  /// Commit-time settlement, called from inside the sequencer's critical
  /// section: every slot in `dead` becomes a Dead tombstone for the rest of
  /// the round (unconditionally — the sequencer is the authority), and every
  /// slot in `slots` not marked Dead is released as in release().
  void settle(uint32_t owner, const std::vector<uint32_t>& slots,
              const std::vector<uint32_t>& dead);

  /// True when `slot` currently reads as a Dead tombstone of this round.
  bool dead(uint32_t slot) const;

  /// Current round epoch (exposed for the protocol unit tests).
  uint32_t epoch() const noexcept { return epoch_; }

  size_t size() const noexcept { return size_; }

private:
  uint64_t load(uint32_t slot) const {
    return words_[slot].load(std::memory_order_acquire);
  }

  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  size_t size_ = 0;
  size_t capacity_ = 0;
  uint32_t epoch_ = 0;
};

/// Reorder buffer: deposits arrive in any order, the commit callback runs in
/// strictly increasing index order, inside the deposit call that completed
/// the next run of consecutive indices. `commit(i)` runs under the internal
/// mutex, so everything it touches is single-threaded by construction. If a
/// commit throws, the sequencer poisons itself: the frontier freezes and
/// later deposits are recorded but never committed — the exception
/// propagates out of exactly one deposit call, and which commits ran is a
/// pure function of the canonical order (everything before the throwing
/// index), not of the schedule.
class CommitSequencer {
public:
  CommitSequencer(size_t n, std::function<void(size_t)> commit);

  /// Mark index `i` ready and drain the frontier as far as it goes.
  void deposit(size_t i);

  /// First index not yet committed (n when fully drained).
  size_t frontier() const;

  bool poisoned() const;

private:
  mutable std::mutex mutex_;
  std::vector<uint8_t> ready_;
  std::function<void(size_t)> commit_;
  size_t frontier_ = 0;
  bool poisoned_ = false;
};

} // namespace smartly::rewrite
