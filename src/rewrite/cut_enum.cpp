#include "rewrite/cut_enum.hpp"

#include <algorithm>

namespace smartly::rewrite {

bool Cut::subset_of(const Cut& o) const noexcept {
  if ((sign & ~o.sign) != 0 || size > o.size)
    return false;
  size_t j = 0;
  for (size_t i = 0; i < size; ++i) {
    while (j < o.size && o.leaves[j] < leaves[i])
      ++j;
    if (j == o.size || o.leaves[j] != leaves[i])
      return false;
    ++j;
  }
  return true;
}

namespace {

Cut trivial_cut(uint32_t node) {
  Cut c;
  c.leaves[0] = node;
  c.size = 1;
  c.sign = 1u << (node & 31);
  return c;
}

/// Merge two cuts into `out` (sorted union); false if more than 4 leaves.
bool merge_cuts(const Cut& a, const Cut& b, Cut& out) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size || j < b.size) {
    uint32_t next;
    if (j == b.size || (i < a.size && a.leaves[i] < b.leaves[j]))
      next = a.leaves[i++];
    else if (i == a.size || b.leaves[j] < a.leaves[i])
      next = b.leaves[j++];
    else {
      next = a.leaves[i];
      ++i, ++j;
    }
    if (n == 4)
      return false;
    out.leaves[n++] = next;
  }
  out.size = static_cast<uint8_t>(n);
  out.sign = a.sign | b.sign;
  for (size_t k = n; k < 4; ++k)
    out.leaves[k] = 0;
  return true;
}

} // namespace

CutSet enumerate_cuts(const aig::Aig& aig, const CutOptions& options) {
  CutSet result;
  result.cuts.resize(aig.num_nodes());
  const size_t limit = options.cut_limit > 0 ? static_cast<size_t>(options.cut_limit) : 1;

  std::vector<Cut> merged;
  for (uint32_t n = 0; n < aig.num_nodes(); ++n) {
    std::vector<Cut>& set = result.cuts[n];
    if (!aig.is_and(n)) { // constant node 0 and primary inputs
      set.push_back(trivial_cut(n));
      continue;
    }

    // Pairwise fanin merge (fanin sets already include their trivial cuts,
    // and fanin node ids are < n, so sets are final).
    merged.clear();
    const std::vector<Cut>& c0 = result.cuts[aig::lit_node(aig.fanin0(n))];
    const std::vector<Cut>& c1 = result.cuts[aig::lit_node(aig.fanin1(n))];
    for (const Cut& a : c0) {
      for (const Cut& b : c1) {
        // 4-leaf bound pre-check on the signature union (popcount of the
        // bloom word underestimates the union size, never overestimates it).
        Cut m;
        if ((a.sign | b.sign) != 0 &&
            __builtin_popcount(a.sign | b.sign) > 4)
          continue;
        if (merge_cuts(a, b, m))
          merged.push_back(m);
      }
    }

    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

    // Dominated-cut pruning: in (size, lex) order a dominating cut sorts
    // before every cut it dominates, so one backward scan against the kept
    // prefix suffices.
    for (const Cut& c : merged) {
      if (set.size() >= limit)
        break;
      bool dominated = false;
      for (const Cut& kept : set) {
        if (kept.subset_of(c)) {
          dominated = true;
          break;
        }
      }
      if (!dominated)
        set.push_back(c);
    }
    result.total += set.size();
    set.push_back(trivial_cut(n));
  }
  return result;
}

} // namespace smartly::rewrite
