#include "rewrite/npn.hpp"

#include <algorithm>

namespace smartly::rewrite {

const std::array<std::array<uint8_t, 4>, 24>& NpnTable::perms() {
  static const std::array<std::array<uint8_t, 4>, 24> table = [] {
    std::array<std::array<uint8_t, 4>, 24> out{};
    std::array<uint8_t, 4> p{0, 1, 2, 3};
    size_t i = 0;
    do {
      out[i++] = p;
    } while (std::next_permutation(p.begin(), p.end()));
    return out;
  }();
  return table;
}

TruthTable NpnTable::apply(TruthTable tt, uint16_t t) {
  const std::array<uint8_t, 4>& perm = perms()[t / 32];
  const uint16_t neg = (t / 2) & 15;
  uint16_t out = 0;
  for (uint16_t m = 0; m < 16; ++m) {
    uint16_t src = 0;
    for (int i = 0; i < 4; ++i)
      src |= static_cast<uint16_t>((((m >> perm[i]) & 1) ^ ((neg >> i) & 1)) << i);
    out |= static_cast<uint16_t>(((tt >> src) & 1) << m);
  }
  return (t & 1) ? static_cast<TruthTable>(~out) : out;
}

NpnTable::NpnTable() : canon_(65536), class_id_(65536), from_canon_(65536) {
  // Ascending scan: an unassigned table is the smallest member of its orbit
  // (any smaller member would already have assigned the whole orbit), so it
  // is the class representative; expanding its orbit assigns every member.
  std::vector<uint8_t> assigned(65536, 0);
  for (uint32_t tt = 0; tt < 65536; ++tt) {
    if (assigned[tt])
      continue;
    const uint16_t id = static_cast<uint16_t>(representatives_.size());
    representatives_.push_back(static_cast<TruthTable>(tt));
    for (uint16_t t = 0; t < kNumTransforms; ++t) {
      const TruthTable v = apply(static_cast<TruthTable>(tt), t);
      if (assigned[v])
        continue;
      assigned[v] = 1;
      canon_[v] = static_cast<TruthTable>(tt);
      class_id_[v] = id;
      from_canon_[v] = t;
    }
  }
}

const NpnTable& NpnTable::instance() {
  static const NpnTable table;
  return table;
}

} // namespace smartly::rewrite
