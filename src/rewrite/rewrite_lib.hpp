// Replacement-structure library for the cut-rewriting engine.
//
// For every cut function (a 4-input truth table) the library supplies a
// *gate program*: a short DAG of word-level cells (Not / And / Or / Xor /
// Mux) over the four cut leaves that recomputes the function. Programs are
// synthesized by memoized min-cost decomposition — every variable is tried
// with the single-cell forms
//
//   f = x & g            (cofactor0 == 0)            And
//   f = x | g            (cofactor1 == const1)       Or
//   f = x ? 0 : g        (cofactor1 == 0)            Mux with constant B
//   f = x ? g : 1        (cofactor0 == const1)       Mux with constant A
//   f = x ^ g            (cofactor0 == ~cofactor1)   Xor
//   f = x ? f1 : f0      (always)                    Mux (Shannon)
//
// recursing on the residual function(s); shared subfunctions are emitted
// once (the emitter hashes on sub-truth-table). The engine pre-seeds the
// memo with the 222 NPN class representatives (rewrite/npn.hpp) so the
// per-class structures form the built-in library; other members of a class
// reach their program through the same shared recursion, which keeps the
// memo bounded by the 65536 possible tables.
//
// Cell cost is uniform (1 per gate) because the engine's gain accounting is
// in RTLIL cells — the paper-level metric the benchmarks gate on is cell
// count after `aigmap`, and the commit path re-checks every program node
// against logic the netlist already contains (DAG-aware sharing), so the
// static cost here is only the tie-break-stable upper bound.
#pragma once

#include "rewrite/npn.hpp"
#include "rtlil/cell.hpp"

#include <cstdint>
#include <vector>

namespace smartly::rewrite {

/// One operand of a gate-program op: a constant, one of the four cut leaves,
/// or the output of an earlier op in the same program.
struct GateOperand {
  enum Kind : uint8_t { Const0, Const1, Leaf, Node } kind = Const0;
  uint8_t index = 0; ///< leaf index (Leaf) or op index (Node)

  bool operator==(const GateOperand& o) const noexcept {
    return kind == o.kind && index == o.index;
  }
};

/// One gate: `type` is Not (a), And/Or/Xor (a, b) or Mux (y = s ? b : a).
struct GateOp {
  rtlil::CellType type = rtlil::CellType::Not;
  GateOperand a, b, s;
  TruthTable tt = 0; ///< this op's function over the program's leaves
};

struct GateProgram {
  std::vector<GateOp> ops; ///< topologically ordered (operands precede users)
  GateOperand out;         ///< the program result (may be a Leaf or Const)
  uint8_t support = 0;     ///< mask of leaves the function depends on
  TruthTable tt = 0;
};

/// Number of gates — the static replacement cost before sharing credits.
inline size_t program_cost(const GateProgram& p) { return p.ops.size(); }

/// Mask of the leaves `tt` depends on.
uint8_t tt_support(TruthTable tt);

/// Evaluate a program over explicit leaf tables (tests, engine validation).
TruthTable eval_program(const GateProgram& p, const TruthTable leaves[4]);

class RewriteLibrary {
public:
  /// Process-wide library with the 222 NPN class representatives pre-built.
  static const RewriteLibrary& instance();

  /// The (memoized) program for `tt`. Thread-safe; the reference stays valid
  /// for the library's lifetime. Programs are a pure function of `tt`, so
  /// lookups are deterministic regardless of memoization order.
  const GateProgram& program(TruthTable tt) const;

  /// Worst-case gate count over all 65536 functions (a Shannon tree over
  /// four variables bounds it by 7; the decomposition forms push it lower).
  size_t max_cost() const;

  /// Snapshot of every memoized program, sorted by truth table (stable bytes
  /// for the service's persistent cache). Thread-safe copy.
  std::vector<GateProgram> export_programs() const;

  /// Install previously exported programs into the memo so a warm service
  /// start skips re-synthesizing them. Every candidate is semantically
  /// validated (eval_program over the leaf projections must reproduce its
  /// truth table, support/operand wiring must be well-formed) — a snapshot is
  /// *evidence*, never trusted — and invalid or already-memoized entries are
  /// skipped. Returns the number actually installed; `*rejected` (optional)
  /// counts the candidates that failed validation.
  size_t import_programs(const std::vector<GateProgram>& programs,
                         size_t* rejected = nullptr) const;

  /// Number of memoized programs (222 NPN representatives after construction;
  /// grows toward 65536 as cut functions are requested).
  size_t memo_size() const;

  /// Fingerprint of the built-in library generation: folds the NPN class
  /// representatives and their program costs. Snapshots recorded under a
  /// different fingerprint (older decomposition rules, different rep set)
  /// are rejected wholesale by the cache loader instead of mixing stale
  /// structures into a new library.
  uint64_t fingerprint() const;

private:
  RewriteLibrary();

  struct Impl;
  Impl* impl_; // intentionally leaked with the process-wide singleton
};

} // namespace smartly::rewrite
