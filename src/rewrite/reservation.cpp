#include "rewrite/reservation.hpp"

namespace smartly::rewrite {

namespace {

constexpr uint64_t kOwnerBits = 30;
constexpr uint64_t kOwnerMask = (uint64_t{1} << kOwnerBits) - 1;
constexpr uint64_t kStateShift = kOwnerBits;
constexpr uint64_t kEpochShift = kOwnerBits + 2;

constexpr uint64_t kFree = 0;
constexpr uint64_t kHeld = 1;
constexpr uint64_t kDead = 2;

constexpr uint64_t word_of(uint32_t epoch, uint64_t state, uint32_t owner) {
  return (uint64_t{epoch} << kEpochShift) | (state << kStateShift) |
         (uint64_t{owner} & kOwnerMask);
}

constexpr uint32_t epoch_of(uint64_t w) { return static_cast<uint32_t>(w >> kEpochShift); }
constexpr uint64_t state_of(uint64_t w) { return (w >> kStateShift) & 3; }
constexpr uint32_t owner_of(uint64_t w) { return static_cast<uint32_t>(w & kOwnerMask); }

} // namespace

void ClaimTable::begin_round(size_t cell_bound) {
  if (cell_bound > capacity_) {
    // No concurrent access between rounds; a fresh zeroed array reads as
    // epoch 0, which is stale for every round (epoch_ starts at 1).
    words_ = std::make_unique<std::atomic<uint64_t>[]>(cell_bound);
    for (size_t i = 0; i < cell_bound; ++i)
      words_[i].store(0, std::memory_order_relaxed);
    capacity_ = cell_bound;
  }
  size_ = cell_bound;
  ++epoch_;
}

ClaimTable::Acquire ClaimTable::acquire(uint32_t owner,
                                        const std::vector<uint32_t>& slots) {
  const auto taken_so_far = [&](size_t end) {
    // Release the prefix we managed to take before conflicting.
    std::vector<uint32_t> prefix(slots.begin(),
                                 slots.begin() + static_cast<ptrdiff_t>(end));
    release(owner, prefix);
  };
  for (size_t i = 0; i < slots.size(); ++i) {
    std::atomic<uint64_t>& word = words_[slots[i]];
    uint64_t w = word.load(std::memory_order_acquire);
    for (;;) {
      const bool live = epoch_of(w) == epoch_;
      if (live && state_of(w) == kDead)
        break; // tombstone: proceed, the sequencer decides
      if (live && state_of(w) == kHeld) {
        const uint32_t holder = owner_of(w);
        if (holder == owner)
          break; // already ours
        if (holder < owner) {
          taken_so_far(i);
          return Acquire::Conflict;
        }
        // Held by a higher-ordered root: steal (priority to lower order).
      }
      if (word.compare_exchange_weak(w, word_of(epoch_, kHeld, owner),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
        break;
      // w was reloaded by the failed CAS; re-examine.
    }
  }
  // Verification pass: a lower-ordered root may have stolen one of our slots
  // between its claim above and now. Claims must form a consistent snapshot
  // before we deposit on their strength.
  for (const uint32_t slot : slots) {
    const uint64_t w = load(slot);
    if (epoch_of(w) == epoch_ && state_of(w) == kHeld && owner_of(w) < owner) {
      release(owner, slots);
      return Acquire::Conflict;
    }
  }
  return Acquire::Won;
}

void ClaimTable::release(uint32_t owner, const std::vector<uint32_t>& slots) {
  for (const uint32_t slot : slots) {
    std::atomic<uint64_t>& word = words_[slot];
    uint64_t w = word.load(std::memory_order_acquire);
    while (epoch_of(w) == epoch_ && state_of(w) == kHeld && owner_of(w) == owner) {
      if (word.compare_exchange_weak(w, word_of(epoch_, kFree, 0),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
        break;
    }
  }
}

void ClaimTable::settle(uint32_t owner, const std::vector<uint32_t>& slots,
                        const std::vector<uint32_t>& dead) {
  for (const uint32_t slot : dead)
    words_[slot].store(word_of(epoch_, kDead, 0), std::memory_order_release);
  release(owner, slots); // release() skips slots now marked Dead
}

bool ClaimTable::dead(uint32_t slot) const {
  const uint64_t w = load(slot);
  return epoch_of(w) == epoch_ && state_of(w) == kDead;
}

CommitSequencer::CommitSequencer(size_t n, std::function<void(size_t)> commit)
    : ready_(n, 0), commit_(std::move(commit)) {}

void CommitSequencer::deposit(size_t i) {
  std::lock_guard<std::mutex> lock(mutex_);
  ready_[i] = 1;
  if (poisoned_)
    return;
  while (frontier_ < ready_.size() && ready_[frontier_]) {
    try {
      commit_(frontier_);
    } catch (...) {
      // Freeze the frontier: later deposits are recorded but never committed,
      // so the set of commits that ran is canonical-prefix-deterministic.
      poisoned_ = true;
      throw;
    }
    ++frontier_;
  }
}

size_t CommitSequencer::frontier() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frontier_;
}

bool CommitSequencer::poisoned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

} // namespace smartly::rewrite
