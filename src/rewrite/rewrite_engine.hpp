// DAG-aware cut-rewriting engine (ABC `rewrite` analogue over RTLIL).
//
// The fraig engine (sweep/fraig_engine.hpp) merges bits that are already
// equivalent; it never *restructures* logic, so a netlist with no equivalent
// nodes left can still be far from minimal. This engine closes that gap:
//
//   blast      the module is bit-blasted into one whole-netlist AIG
//              (aig/aigmap.hpp) and every AIG node is anchored back to the
//              canonical module bits that map onto it;
//   cuts       4-feasible cuts are enumerated per node with dominated-cut
//              pruning (rewrite/cut_enum.hpp);
//   classify   each cut function's truth table is extracted by packed cone
//              simulation (sim::cut_truth_table) and NPN-classified
//              (rewrite/npn.hpp, 222 classes);
//   resynth    the replacement library (rewrite/rewrite_lib.hpp) supplies a
//              min-cost gate program; every program gate is priced against
//              logic the AIG already contains (Aig::find_and probes resolving
//              to anchored live bits) — the DAG-aware sharing credit that
//              lets zero-gain rewrites stay cheap enough to enable
//              downstream fraig merges;
//   commit     per root cell, replacements are vectorized back to word-level
//              cells (members sharing a program, reuse pattern and mux
//              selects become one wide cell), checked against existing cells
//              through the shared structural key (sweep::cell_structural_key)
//              and committed through a SweepJournal in canonical module-cell
//              order via the NetlistIndex incremental-maintenance API.
//
// Gain accounting is in RTLIL cells: a rewrite's gain is the root cell plus
// its predicted-dead fanin cone (an MFFC over the netlist index, stopping at
// leaves, reused bits and output ports) minus the cells actually added after
// all sharing credits. Cells the gain predicts dead are left for the stage's
// opt_clean — a wrong prediction costs quality, never correctness.
//
// Determinism: root evaluation runs barrier-free on a work-stealing pool —
// workers reserve each root's MFFC in the shared ClaimTable (advisory,
// canonical-order tie-break; losers requeue) and deposit results into a
// CommitSequencer reorder buffer that drains strictly in canonical
// module-cell order, performing selection, gain accounting and journal
// commits inside its critical section (rewrite/reservation.hpp). Netlist
// bytes and all statistics except threads_used and the schedule-dependent
// reservation_conflicts counter are bit-identical for every thread count.
#pragma once

#include "rtlil/module.hpp"
#include "util/budget.hpp"
#include "util/recovery.hpp"

#include <cstdint>

namespace smartly::rewrite {

struct RewriteOptions {
  /// Worker threads for root evaluation (0 = one per hardware thread).
  /// Output is bit-identical for every value.
  int threads = 0;
  int cut_limit = 8;      ///< non-trivial cuts kept per AIG node
  size_t max_rounds = 4;  ///< blast -> evaluate -> commit fixpoint cap
  /// Commit rewrites whose cell gain is exactly zero: they reshape logic
  /// without shrinking it, which the fraig stage after them can often merge.
  /// Rounds whose commits are all zero-gain end the sweep (no ping-pong).
  bool zero_gain = true;
  /// Optional run-wide resource governor (not owned). Deterministic budgets
  /// (incl. the cell-growth cap) are evaluated at round barriers;
  /// deadline/cancellation also polled per root from workers. On halt the
  /// round's committed rewrites stand and no further rounds run.
  util::ResourceGuard* guard = nullptr;
  /// Post-run self-check: assert the incrementally maintained NetlistIndex
  /// equals a from-scratch rebuild (throws std::logic_error on divergence).
  bool check_index = false;
  /// Units the recovery layer has quarantined (not owned; frozen during the
  /// run). Roots whose first canonical output bit is quarantined under
  /// "rewrite.eval" are dropped from the work list (built in module cell
  /// order, so the filter is thread-count-deterministic); rounds quarantined
  /// under "rewrite.round" are skipped.
  const util::QuarantineSet* quarantine = nullptr;
};

struct RewriteStats {
  size_t rounds = 0;
  size_t aig_nodes = 0;         ///< whole-netlist blast size (first round)
  size_t cuts = 0;              ///< non-trivial cuts enumerated (all rounds)
  size_t roots_evaluated = 0;   ///< root cells evaluated (all rounds)
  size_t candidates = 0;        ///< (bit, cut) candidates with usable leaves
  size_t npn_classes = 0;       ///< distinct NPN classes among chosen cuts
  size_t rewrites = 0;          ///< root cells rewritten
  size_t zero_gain_rewrites = 0;///< subset committed at exactly zero cell gain
  size_t plans_rejected = 0;    ///< plans failing the gain gates
  size_t plans_noop = 0;        ///< plans aborted as self-reproductions
  size_t cells_added = 0;       ///< replacement cells materialized
  size_t gates_reused = 0;      ///< program gates satisfied by anchored logic
  size_t cells_shared = 0;      ///< planned cells folded onto structural twins
  size_t predicted_dead = 0;    ///< MFFC cells left for opt_clean
  size_t skipped_roots = 0;     ///< roots left unevaluated after a halt
  size_t quarantined = 0;       ///< roots/rounds skipped by the quarantine set
  size_t halted = 0;            ///< 1 when a budget/cancel/fault stopped the run early
  int threads_used = 0;         ///< machine detail; excluded from determinism
};

/// Accumulate work counters across stages (multi-iteration flows).
/// threads_used keeps the left-hand value; npn_classes accumulates per-stage
/// distinct counts (an upper bound on the run-wide distinct count).
RewriteStats& operator+=(RewriteStats& acc, const RewriteStats& s);

/// Equality of every work counter except threads_used — the relation the
/// thread-count determinism checks assert (bench_rewrite, tests).
bool same_work(const RewriteStats& a, const RewriteStats& b);

/// Run the cut-rewriting engine on `module` to fixpoint. Pair with opt_clean
/// afterwards to remove the predicted-dead cones (opt/pipeline's
/// rewrite_stage does both).
RewriteStats rewrite_sweep(rtlil::Module& module, const RewriteOptions& options = {});

} // namespace smartly::rewrite
