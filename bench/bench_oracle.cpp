// Oracle engine benchmark: from-scratch InferenceOracle vs IncrementalOracle
// over the public + industrial circuits, emitting the BENCH_oracle.json
// schema (per-circuit speedup, cache hit rates, pattern recycling, and a
// decisions_match differential).
//
//   ./bench_oracle [--smoke] [--json] [--filter <substr>]
//
//   --smoke   small circuit subset (<5 s) — the tier-2 CTest target. Exits
//             nonzero if any circuit's incremental decisions diverge from the
//             baseline's, or if the caches never hit (a dead cache is a
//             regression even when decisions still match).
//   --json    print the JSON document to stdout (human table otherwise).
//   --filter  run only circuits whose name contains <substr> (the industrial
//             rows dominate a full run; iterate on a subset instead).
//
// Both arms run the same walk (opt::optimize_muxtrees) on clones of the same
// pre-optimized design; `*_seconds` is time spent inside oracle decide()
// calls, `*_pass_seconds` the whole walk. Decisions are traced as
// (control-bit name, verdict) hashes and compared element-wise, so
// decisions_match certifies bit-identical verdicts in query order.
#include "bench_json.hpp"
#include "benchgen/industrial.hpp"
#include "benchgen/public_bench.hpp"
#include "core/incremental_oracle.hpp"
#include "core/sat_redundancy.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace smartly;
using benchjson::ratio;

namespace {

/// Forwards to an inner oracle, timing decide() and recording a decision
/// trace keyed on stable names (wire name + offset), so traces from two
/// design clones are comparable.
class RecordingOracle final : public opt::MuxtreeOracle {
public:
  explicit RecordingOracle(opt::MuxtreeOracle& inner) : inner_(inner) {}

  void begin_module(rtlil::Module& module) override { inner_.begin_module(module); }
  void begin_module(rtlil::Module& module, const rtlil::NetlistIndex& index) override {
    inner_.begin_module(module, index);
  }

  opt::CtrlDecision decide(rtlil::SigBit ctrl, const opt::KnownMap& known) override {
    const auto t0 = std::chrono::steady_clock::now();
    const opt::CtrlDecision d = inner_.decide(ctrl, known);
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    uint64_t h = ctrl.is_wire()
                     ? hash_combine(std::hash<std::string>{}(ctrl.wire->name()),
                                    static_cast<uint64_t>(ctrl.offset))
                     : hash_mix(static_cast<uint64_t>(ctrl.data));
    trace.push_back(hash_combine(h, static_cast<uint64_t>(d)));
    return d;
  }

  void notify_cell_mutated(rtlil::Cell* cell) override { inner_.notify_cell_mutated(cell); }
  void notify_cell_removed(rtlil::Cell* cell) override { inner_.notify_cell_removed(cell); }

  double seconds = 0;
  std::vector<uint64_t> trace;

private:
  opt::MuxtreeOracle& inner_;
};

struct Row {
  std::string name;
  size_t queries = 0;
  double baseline_seconds = 0, incremental_seconds = 0;
  double baseline_pass_seconds = 0, incremental_pass_seconds = 0;
  core::SatRedundancyStats base_stats;
  core::IncrementalOracleStats incr_stats;
  bool decisions_match = false;
};

Row run_circuit(const benchgen::BenchCircuit& circuit, util::ResourceGuard& guard) {
  Row row;
  row.name = circuit.name;
  const auto prepared = benchjson::prepare_muxtree_design(circuit.verilog);

  const auto baseline_design = rtlil::clone_design(*prepared);
  core::SatRedundancyOptions base_options;
  base_options.guard = &guard; // unlimited: charges totals for the resource block
  core::InferenceOracle baseline_oracle(base_options);
  RecordingOracle baseline(baseline_oracle);
  auto t0 = std::chrono::steady_clock::now();
  opt::optimize_muxtrees(*baseline_design->top(), baseline);
  row.baseline_pass_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto incremental_design = rtlil::clone_design(*prepared);
  core::IncrementalOracleOptions incr_options;
  incr_options.base = base_options;
  core::IncrementalOracle incremental_oracle(incr_options);
  RecordingOracle incremental(incremental_oracle);
  t0 = std::chrono::steady_clock::now();
  opt::optimize_muxtrees(*incremental_design->top(), incremental);
  row.incremental_pass_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  row.queries = baseline.trace.size();
  row.baseline_seconds = baseline.seconds;
  row.incremental_seconds = incremental.seconds;
  row.base_stats = baseline_oracle.stats();
  row.incr_stats = incremental_oracle.stats();
  row.decisions_match = baseline.trace == incremental.trace;
  if (!row.decisions_match) {
    size_t i = 0;
    const size_t n = std::min(baseline.trace.size(), incremental.trace.size());
    while (i < n && baseline.trace[i] == incremental.trace[i])
      ++i;
    std::fprintf(stderr,
                 "DECISION MISMATCH on %s: query %zu of %zu/%zu (baseline/incremental)\n",
                 row.name.c_str(), i, baseline.trace.size(), incremental.trace.size());
  }
  return row;
}

void print_json_row(const Row& r, bool last) {
  const auto& is = r.incr_stats;
  const double cone_total = double(is.cone_cache_hits + is.cone_cache_misses);
  benchjson::JsonObject o;
  o.put("name", r.name)
      .put("queries", r.queries)
      .putf("baseline_seconds", r.baseline_seconds)
      .putf("incremental_seconds", r.incremental_seconds)
      .putf("speedup", ratio(r.baseline_seconds, r.incremental_seconds), 3)
      .putf("baseline_pass_seconds", r.baseline_pass_seconds)
      .putf("incremental_pass_seconds", r.incremental_pass_seconds)
      .putf("queries_per_sec_baseline", ratio(double(r.queries), r.baseline_seconds), 1)
      .putf("queries_per_sec_incremental", ratio(double(r.queries), r.incremental_seconds), 1)
      .putf("sim_filter_kill_rate", ratio(double(is.sim_filter_kills), double(is.queries)))
      .putf("cone_cache_hit_rate", ratio(double(is.cone_cache_hits), cone_total))
      .putf("subgraph_cache_hit_rate", ratio(double(is.decision_cache_hits), double(is.queries)))
      .put("sim_filter_kills", is.sim_filter_kills)
      .put("sim_filter_half", is.sim_filter_half)
      .put("sat_calls_baseline", r.base_stats.sat_calls)
      .put("sat_calls_incremental", is.sat_calls)
      .put("solver_conflicts_baseline", static_cast<unsigned long long>(r.base_stats.solver_conflicts))
      .put("solver_conflicts_incremental", static_cast<unsigned long long>(is.solver_conflicts))
      .put("patterns_recycled", is.patterns_recycled)
      .put("cells_remapped", is.cells_remapped)
      .put("engine_resets", is.engine_resets)
      .put("dropped_constraints", is.dropped_constraints)
      .put("decisions_match", r.decisions_match);
  std::printf("    %s%s\n", o.str().c_str(), last ? "" : ",");
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  std::string filter, trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--filter") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_oracle: --filter requires a value\n");
        return 2;
      }
      filter = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_oracle: --trace-out requires a value\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: bench_oracle [--smoke] [--json] [--filter <substr>]\n"
          "\n"
          "From-scratch InferenceOracle vs IncrementalOracle differential over the\n"
          "public + industrial circuits (BENCH_oracle.json schema).\n"
          "\n"
          "  --smoke            small subset, <5 s; nonzero exit on decision\n"
          "                     divergence or dead caches (the tier-2 CTest target)\n"
          "  --json             emit the JSON document instead of the human table\n"
          "  --filter <substr>  run only circuits whose name contains <substr>\n"
          "                     (industrial runs dominate a full run; e.g.\n"
          "                     --filter industrial or --filter tv80)\n"
          "  --trace-out FILE   write a Chrome trace-event JSON of the run\n");
      return 0;
    } else {
      std::fprintf(stderr, "bench_oracle: unknown option '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }

  std::vector<benchgen::BenchCircuit> circuits;
  if (smoke) {
    // Small circuits only: representative of all three cache paths but
    // comfortably under the 5 s smoke budget.
    for (const auto& c : benchgen::public_suite())
      if (c.name == "pci_bridge32" || c.name == "mem_ctrl" || c.name == "tv80" ||
          c.name == "ac97_ctrl")
        circuits.push_back(c);
  } else {
    circuits = benchgen::public_suite();
    const auto industrial = benchgen::industrial_suite();
    circuits.push_back(industrial[0]); // industrial_tp0
    circuits.push_back(industrial[1]); // industrial_tp1
  }
  benchjson::apply_name_filter(circuits, filter, "bench_oracle");

  benchjson::TraceOutput trace_output;
  trace_output.arm(trace_path);
  const obs::Span root_span("bench", "bench_oracle");
  obs::StageProfile profile;

  util::ResourceGuard guard; // unbudgeted: the resource block reports charged totals
  std::vector<Row> rows;
  rows.reserve(circuits.size());
  for (const auto& c : circuits) {
    {
      const auto stage = profile.scope(c.name);
      const obs::Span span("bench", c.name);
      rows.push_back(run_circuit(c, guard));
    }
    if (!json) {
      const Row& r = rows.back();
      std::printf("%-16s %6zu queries  base %.4fs  incr %.4fs  speedup %5.2fx  "
                  "cone %4.0f%%  exact %4.0f%%  match %s\n",
                  r.name.c_str(), r.queries, r.baseline_seconds, r.incremental_seconds,
                  ratio(r.baseline_seconds, r.incremental_seconds),
                  100.0 * ratio(double(r.incr_stats.cone_cache_hits),
                                double(r.incr_stats.cone_cache_hits +
                                       r.incr_stats.cone_cache_misses)),
                  100.0 * ratio(double(r.incr_stats.decision_cache_hits),
                                double(r.incr_stats.queries)),
                  r.decisions_match ? "yes" : "NO");
    }
  }

  // The total sums every listed row (a past release shipped a total that
  // covered only a subset — keep the aggregate loop right next to the rows it
  // aggregates). Pass-time totals ride along so the Amdahl gap between
  // decide() time and whole-walk time is tracked release-over-release.
  size_t total_queries = 0;
  double total_base = 0, total_incr = 0;
  double total_base_pass = 0, total_incr_pass = 0;
  bool all_match = true;
  size_t total_cache_hits = 0;
  for (const Row& r : rows) {
    total_queries += r.queries;
    total_base += r.baseline_seconds;
    total_incr += r.incremental_seconds;
    total_base_pass += r.baseline_pass_seconds;
    total_incr_pass += r.incremental_pass_seconds;
    all_match = all_match && r.decisions_match;
    total_cache_hits += r.incr_stats.cone_cache_hits + r.incr_stats.decision_cache_hits;
  }

  if (json) {
    std::printf("{\n  \"bench\": \"oracle\",\n  \"metric\": \"oracle_seconds\",\n"
                "  \"circuits\": [\n");
    for (size_t i = 0; i < rows.size(); ++i)
      print_json_row(rows[i], i + 1 == rows.size());
    std::printf("  ],\n  \"total\": {\"queries\": %zu, \"baseline_seconds\": %.4f, "
                "\"incremental_seconds\": %.4f, \"speedup\": %.3f, "
                "\"baseline_pass_seconds\": %.4f, \"incremental_pass_seconds\": %.4f, "
                "\"pass_speedup\": %.3f},\n  \"resource\": %s,\n  \"obs\": %s\n}\n",
                total_queries, total_base, total_incr, ratio(total_base, total_incr),
                total_base_pass, total_incr_pass, ratio(total_base_pass, total_incr_pass),
                benchjson::resource_json(guard.report()).c_str(),
                benchjson::obs_json(profile).c_str());
  } else {
    std::printf("\nTotal: %zu queries, baseline %.4fs, incremental %.4fs, speedup %.2fx "
                "(oracle trajectory: 2.7x)\n"
                "       whole pass: baseline %.4fs, incremental %.4fs, speedup %.2fx\n",
                total_queries, total_base, total_incr, ratio(total_base, total_incr),
                total_base_pass, total_incr_pass, ratio(total_base_pass, total_incr_pass));
  }

  if (!all_match) {
    std::fprintf(stderr, "FAIL: incremental oracle decisions diverge from baseline\n");
    return 1;
  }
  if (total_cache_hits == 0) {
    std::fprintf(stderr, "FAIL: caches never hit — incrementality regressed\n");
    return 1;
  }
  return 0;
}
