// Service-mode benchmark: cold vs warm cache throughput and kill -9
// crash-recovery fidelity, emitting the BENCH_service.json schema.
//
//   ./bench_service [--smoke] [--json] [--jobs N]
//
//   --smoke    small job set — the tier-2 CTest target. Exits nonzero if the
//              crash-interrupted run's result set is not byte-identical to
//              the uninterrupted run's, if anything was spuriously
//              quarantined, if a corruption event lost data, or if the warm
//              run's cache hit rate fails to beat the cold run's.
//   --json     print the JSON document to stdout (human table otherwise).
//   --jobs N   override the job-set size.
//
// Three phases over the same generated job set (mutated benchgen variants —
// industrial muxtree circuits and random netlists, several mutation seeds
// per family):
//
//   cold   fresh spool, empty cache: the reference run. Its done/ tree is
//          the golden result set and its throughput the cold baseline.
//   warm   fresh spool, but the cold run's warm-cache snapshot is installed
//          first. Gates: hit rate strictly above cold (the memo must
//          actually serve) and throughput at or above cold.
//   crash  fresh spool, same jobs, then a kill-and-restart gauntlet driven
//          by the daemon's deterministic crash hooks in fork()ed children:
//          run 1 dies (_exit 137) after a third of the jobs with the other
//          workers mid-job; run 2 replays the journal, requeues every
//          interrupted job, finishes the burst, then dies tearing the
//          warm-cache snapshot at the final path; run 3 runs in-process and
//          must quarantine the torn snapshot aside, cold-rebuild, and find
//          nothing left to do. The final done/ tree must be byte-identical
//          to the cold run's (results AND manifests) and nothing may be
//          quarantined — corruption_loss_events counts every file where any
//          of that failed, and its baseline is zero.
#include "bench_json.hpp"
#include "benchgen/industrial.hpp"
#include "benchgen/random_circuit.hpp"
#include "service/service.hpp"
#include "util/atomic_file.hpp"
#include "util/budget.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace smartly;
using benchjson::seconds_since;

namespace fs = std::filesystem;

namespace {

struct JobSet {
  std::vector<std::pair<std::string, std::string>> jobs; ///< name -> verilog
};

/// Mutated benchgen variants: every job is a distinct mutation seed of its
/// family, so the cold run pays full price per job while the warm run's
/// snapshot answers the isomorphic cones the families share.
JobSet make_jobs(size_t count) {
  JobSet set;
  char name[64];
  for (size_t j = 0; j < count; ++j) {
    if (j % 2 == 0) {
      const auto c = benchgen::generate_industrial(static_cast<int>(j % 8), /*scale=*/1,
                                                   0x5eedULL + j);
      std::snprintf(name, sizeof(name), "job-%03zu-ind", j);
      set.jobs.emplace_back(name, c.verilog);
    } else {
      std::snprintf(name, sizeof(name), "job-%03zu-rnd", j);
      set.jobs.emplace_back(name, benchgen::random_verilog(1 + j, /*size=*/5));
    }
  }
  return set;
}

void submit_all(const service::SpoolPaths& paths, const JobSet& set) {
  for (const auto& [name, verilog] : set.jobs) {
    std::string error;
    if (!service::submit_job(paths, name, verilog, &error)) {
      std::fprintf(stderr, "bench_service: submit %s: %s\n", name.c_str(), error.c_str());
      std::exit(2);
    }
  }
}

service::ServiceOptions base_options(size_t job_count) {
  service::ServiceOptions o;
  o.drain_and_exit = true;
  // The whole job set is pre-submitted, so admission must cover it: a
  // smaller bound would shed the backlog instead of queueing it (sheds are
  // an overload response, exercised in tests/test_service.cpp).
  o.queue_max = static_cast<int>(job_count);
  o.poll_ms = 1;
  return o;
}

struct PhaseResult {
  double seconds = 0;
  service::ServiceStats stats;
};

/// Run the daemon in-process until the spool drains.
PhaseResult run_inprocess(const std::string& root, const service::ServiceOptions& options) {
  PhaseResult r;
  const auto t0 = std::chrono::steady_clock::now();
  service::OptService daemon(root, options);
  const int rc = daemon.run();
  r.seconds = seconds_since(t0);
  r.stats = daemon.stats();
  if (rc != 0) {
    std::fprintf(stderr, "bench_service: daemon exited %d\n", rc);
    std::exit(2);
  }
  return r;
}

/// Run the daemon in a fork()ed child (for runs that _exit(137) on purpose).
/// Returns the child's exit code.
int run_forked(const std::string& root, const service::ServiceOptions& options) {
  const pid_t pid = fork();
  if (pid == 0) {
    service::OptService daemon(root, options);
    _exit(daemon.run());
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

std::string slurp(const fs::path& p) {
  std::string out;
  util::read_file(p.string(), &out, nullptr);
  return out;
}

/// Compare two done/ trees byte-for-byte over the expected job set. Every
/// missing pair, mismatched netlist, or mismatched manifest is one loss
/// event.
size_t count_loss_events(const service::SpoolPaths& golden, const service::SpoolPaths& got,
                         const JobSet& set, bool verbose) {
  size_t losses = 0;
  for (const auto& [name, verilog] : set.jobs) {
    (void)verilog;
    for (const char* ext : {".v", ".result"}) {
      const std::string a = slurp(fs::path(golden.done) / (name + ext));
      const std::string b = slurp(fs::path(got.done) / (name + ext));
      if (a.empty() || a != b) {
        ++losses;
        if (verbose)
          std::fprintf(stderr, "bench_service: %s%s differs from the uninterrupted run\n",
                       name.c_str(), ext);
      }
    }
  }
  return losses;
}

/// Combined warm-cache hit rate across both persistent layers: whole-job
/// result replays and oracle-memo hits, over every lookup either layer saw.
/// Deterministic — hits depend on cache content, never on timing.
double hit_rate(const service::ServiceStats& s) {
  const uint64_t hits = s.result_hits + s.memo_hits;
  const uint64_t total = hits + s.result_misses + s.memo_misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

std::string phase_json(const char* name, size_t jobs, const PhaseResult& r) {
  benchjson::JsonObject o;
  o.put("name", std::string(name))
      .put("jobs", jobs)
      .putf("seconds", r.seconds)
      .putf("jobs_per_second", r.seconds > 0 ? double(jobs) / r.seconds : 0.0)
      .put("memo_hits", r.stats.memo_hits)
      .put("memo_misses", r.stats.memo_misses)
      .put("memo_inserts", r.stats.memo_inserts)
      .put("result_hits", r.stats.result_hits)
      .put("result_misses", r.stats.result_misses)
      .putf("hit_rate", hit_rate(r.stats))
      .put("jobs_completed", r.stats.jobs_completed)
      .put("jobs_requeued", r.stats.jobs_requeued)
      .put("jobs_quarantined", r.stats.jobs_quarantined)
      .put("snapshots_written", r.stats.snapshots_written)
      .put("warm_loaded", r.stats.warm.loaded)
      .put("warm_corrupt_quarantined", r.stats.warm.corrupt_quarantined);
  return o.str();
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  size_t job_count = 0;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      job_count = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: bench_service [--smoke] [--json] [--jobs N] [--trace-out FILE]\n\n"
                  "Service-mode benchmark: cold vs warm warm-cache throughput plus a\n"
                  "kill-and-restart gauntlet (BENCH_service.json schema). The crash\n"
                  "phase's result set must be byte-identical to the uninterrupted\n"
                  "run's and the warm hit rate strictly above the cold one.\n");
      return 0;
    } else {
      std::fprintf(stderr, "bench_service: unknown option '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (job_count == 0)
    job_count = smoke ? 12 : 240;

  const JobSet set = make_jobs(job_count);
  const fs::path root = fs::temp_directory_path() /
                        ("bench_service." + std::to_string(::getpid()));
  fs::remove_all(root);
  const service::SpoolPaths cold_paths = service::SpoolPaths::at((root / "cold").string());
  const service::SpoolPaths warm_paths = service::SpoolPaths::at((root / "warm").string());
  const service::SpoolPaths crash_paths = service::SpoolPaths::at((root / "crash").string());
  std::string error;
  for (const auto* p : {&cold_paths, &warm_paths, &crash_paths})
    if (!p->ensure(&error)) {
      std::fprintf(stderr, "bench_service: %s\n", error.c_str());
      return 2;
    }

  benchjson::TraceOutput trace_output;
  trace_output.arm(trace_path);
  const obs::Span root_span("bench", "bench_service");
  obs::StageProfile profile;

  // --- cold: the reference run -------------------------------------------
  submit_all(cold_paths, set);
  PhaseResult cold;
  {
    const auto stage = profile.scope("cold");
    const obs::Span span("bench", "cold");
    cold = run_inprocess(cold_paths.root, base_options(job_count));
  }

  // --- warm: same jobs, the cold run's snapshot pre-installed ------------
  fs::copy_file(cold_paths.warm_cache_path(), warm_paths.warm_cache_path(),
                fs::copy_options::overwrite_existing);
  submit_all(warm_paths, set);
  PhaseResult warm;
  {
    const auto stage = profile.scope("warm");
    const obs::Span span("bench", "warm");
    warm = run_inprocess(warm_paths.root, base_options(job_count));
  }

  // --- crash: kill -9 gauntlet, then drain, then compare -----------------
  auto crash_stage = std::make_unique<obs::StageProfile::Scope>(profile, "crash");
  auto crash_span = std::make_unique<obs::Span>("bench", "crash");
  submit_all(crash_paths, set);
  size_t crash_restarts = 0;

  // Run 1: die the hard way after a third of the jobs, with the rest of the
  // batch claimed and several workers mid-job.
  service::ServiceOptions crash1 = base_options(job_count);
  crash1.crash_after_jobs = std::max<uint64_t>(1, job_count / 3);
  int rc = run_forked(crash_paths.root, crash1);
  if (rc != 137) {
    std::fprintf(stderr, "bench_service: crash run 1 exited %d, expected 137\n", rc);
    return 2;
  }
  ++crash_restarts;

  // Measure the recovery surface exactly the way the daemon will: replay
  // the write-ahead journal and count claimed-but-unfinished jobs.
  service::JournalState wal;
  if (!service::JobJournal::replay(crash_paths.journal_path(), &wal, &error)) {
    std::fprintf(stderr, "bench_service: journal replay: %s\n", error.c_str());
    return 2;
  }
  size_t jobs_recovered = 0;
  for (const std::string& name : wal.interrupted())
    if (!fs::exists(fs::path(crash_paths.done) / (name + ".result")))
      ++jobs_recovered;

  // Run 2: replay + requeue + finish the burst, then tear the warm-cache
  // snapshot at the final path and die mid-write.
  service::ServiceOptions crash2 = base_options(job_count);
  crash2.crash_during_snapshot = true;
  rc = run_forked(crash_paths.root, crash2);
  if (rc != 137) {
    std::fprintf(stderr, "bench_service: crash run 2 exited %d, expected 137\n", rc);
    return 2;
  }
  ++crash_restarts;

  // Run 3: must quarantine the torn snapshot aside, cold-rebuild, and find
  // every job already published.
  const PhaseResult recovered = run_inprocess(crash_paths.root, base_options(job_count));
  crash_span.reset();
  crash_stage.reset();

  const size_t loss_events = count_loss_events(cold_paths, crash_paths, set, !json);
  const bool results_match = loss_events == 0;
  const bool no_spurious_quarantine = recovered.stats.jobs_quarantined == 0 &&
                                      fs::is_empty(crash_paths.quarantine);
  // Run 2's torn snapshot must have been detected and moved aside.
  const bool snapshot_recovered = recovered.stats.warm.corrupt_quarantined &&
                                  fs::exists(crash_paths.warm_cache_path() + ".corrupt");
  const bool warm_hits_beat_cold = hit_rate(warm.stats) > hit_rate(cold.stats);
  const double cold_jps = cold.seconds > 0 ? double(job_count) / cold.seconds : 0.0;
  const double warm_jps = warm.seconds > 0 ? double(job_count) / warm.seconds : 0.0;
  const bool warm_beats_cold = warm_jps > cold_jps;

  if (json) {
    std::string phases = "[\n    " + phase_json("cold", job_count, cold) + ",\n    " +
                         phase_json("warm", job_count, warm) + ",\n    " +
                         phase_json("crash_recovered", job_count, recovered) + "\n  ]";
    benchjson::JsonObject total;
    total.put("jobs", job_count)
        .putf("cold_jobs_per_second", cold_jps)
        .putf("warm_jobs_per_second", warm_jps)
        .putf("warm_speedup", cold_jps > 0 ? warm_jps / cold_jps : 0.0)
        .putf("cold_hit_rate", hit_rate(cold.stats))
        .putf("warm_hit_rate", hit_rate(warm.stats))
        .put("crash_restarts", crash_restarts)
        .put("jobs_recovered", jobs_recovered)
        .put("jobs_quarantined", recovered.stats.jobs_quarantined)
        .put("corruption_loss_events", loss_events)
        .put("results_match_after_crash", results_match)
        .put("no_spurious_quarantine", no_spurious_quarantine)
        .put("snapshot_corruption_recovered", snapshot_recovered)
        .put("warm_hits_beat_cold", warm_hits_beat_cold)
        .put("warm_beats_cold", warm_beats_cold);
    util::ResourceGuard guard; // service jobs govern themselves; zeros here
    std::printf("{\n  \"bench\": \"service\",\n  \"metric\": \"jobs_per_second\",\n"
                "  \"hardware_threads\": %u,\n  \"phases\": %s,\n  \"total\": %s,\n"
                "  \"resource\": %s,\n  \"obs\": %s\n}\n",
                std::thread::hardware_concurrency(), phases.c_str(), total.str().c_str(),
                benchjson::resource_json(guard.report()).c_str(),
                benchjson::obs_json(profile).c_str());
  } else {
    std::printf("cold: %zu jobs in %.3fs (%.2f jobs/s), hit rate %.3f\n", job_count,
                cold.seconds, cold_jps, hit_rate(cold.stats));
    std::printf("warm: %zu jobs in %.3fs (%.2f jobs/s), hit rate %.3f\n", job_count,
                warm.seconds, warm_jps, hit_rate(warm.stats));
    std::printf("crash: %zu restarts, %zu jobs recovered, %zu loss events, snapshot "
                "recovery %s\n",
                crash_restarts, jobs_recovered, loss_events,
                snapshot_recovered ? "ok" : "FAIL");
  }

  fs::remove_all(root);

  if (!results_match) {
    std::fprintf(stderr,
                 "FAIL: %zu result files differ from the uninterrupted run\n", loss_events);
    return 1;
  }
  if (!no_spurious_quarantine) {
    std::fprintf(stderr, "FAIL: the crash gauntlet quarantined a job spuriously\n");
    return 1;
  }
  if (!snapshot_recovered) {
    std::fprintf(stderr, "FAIL: the torn warm-cache snapshot was not quarantined aside\n");
    return 1;
  }
  if (!warm_hits_beat_cold) {
    std::fprintf(stderr, "FAIL: warm hit rate (%.3f) did not beat cold (%.3f)\n",
                 hit_rate(warm.stats), hit_rate(cold.stats));
    return 1;
  }
  if (!warm_beats_cold) {
    std::fprintf(stderr, "FAIL: warm throughput (%.2f jobs/s) did not beat cold (%.2f)\n",
                 warm_jps, cold_jps);
    return 1;
  }
  return 0;
}
