// Parallel sweep engine benchmark: whole-pass wall clock vs thread count,
// emitting the BENCH_pass.json schema (per-circuit scaling curves plus the
// determinism differentials the engine guarantees).
//
//   ./bench_pass [--smoke] [--json] [--filter <substr>] [--threads <csv>]
//
//   --smoke    two small circuits, threads {1,2} — the tier-2 CTest target.
//              Exits nonzero if decisions diverge from the serial engine or
//              the netlist/stats differ across thread counts.
//   --json     print the JSON document to stdout (human table otherwise).
//   --filter   run only circuits whose name contains <substr>.
//   --threads  comma-separated worker counts (default 1,2,4,8).
//
// Arms per circuit (all on clones of the same pre-optimized design):
//   * serial     — the PR-2 engine: optimize_muxtrees + one IncrementalOracle
//                  (single-threaded reference for decisions_match).
//   * threads=T  — the parallel deterministic sweep engine.
// decisions_match compares canonical traces (schedule-/replay-insensitive);
// netlist_deterministic / stats_deterministic require byte-identical
// write_rtlil output and identical stats for every T.
#include "backend/write_rtlil.hpp"
#include "bench_json.hpp"
#include "benchgen/industrial.hpp"
#include "benchgen/public_bench.hpp"
#include "core/incremental_oracle.hpp"
#include "core/sat_redundancy.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace smartly;
using benchjson::ratio;
using benchjson::seconds_since;

namespace {

struct ScalingPoint {
  int threads = 0;
  double seconds = 0;
  opt::ParallelSweepStats sweep;
  bool decisions_match = false;
};

struct Row {
  std::string name;
  size_t queries = 0;
  double serial_seconds = 0;
  std::vector<ScalingPoint> scaling;
  size_t regions = 0;
  size_t largest_region_trees = 0;
  bool netlist_deterministic = true;
  bool stats_deterministic = true;
};

bool same_stats(const core::SatRedundancyStats& a, const core::SatRedundancyStats& b) {
  return a.queries == b.queries && a.decided_syntactic == b.decided_syntactic &&
         a.decided_inference == b.decided_inference && a.decided_sim == b.decided_sim &&
         a.decided_sat == b.decided_sat && a.dead_paths == b.dead_paths &&
         a.skipped_too_large == b.skipped_too_large && a.gates_seen == b.gates_seen &&
         a.gates_kept == b.gates_kept && a.sim_filter_kills == b.sim_filter_kills &&
         a.sim_filter_half == b.sim_filter_half && a.sat_calls == b.sat_calls &&
         a.solver_conflicts == b.solver_conflicts &&
         a.walker.mux_collapsed == b.walker.mux_collapsed &&
         a.walker.pmux_branches_removed == b.walker.pmux_branches_removed &&
         a.walker.data_bits_replaced == b.walker.data_bits_replaced &&
         a.walker.oracle_queries == b.walker.oracle_queries &&
         a.walker.iterations == b.walker.iterations;
}

Row run_circuit(const benchgen::BenchCircuit& circuit, const std::vector<int>& thread_counts,
                util::ResourceGuard& guard) {
  Row row;
  row.name = circuit.name;
  const auto prepared = benchjson::prepare_muxtree_design(circuit.verilog);

  // Serial reference (PR-2 engine).
  opt::DecisionTrace serial_trace;
  {
    const auto design = rtlil::clone_design(*prepared);
    core::IncrementalOracle oracle;
    const auto t0 = std::chrono::steady_clock::now();
    const opt::MuxtreeStats ws =
        opt::optimize_muxtrees(*design->top(), oracle, &serial_trace);
    row.serial_seconds = seconds_since(t0);
    row.queries = ws.oracle_queries;
  }
  const std::vector<uint64_t> serial_canonical = opt::canonical_trace(serial_trace);

  std::string first_netlist;
  core::SatRedundancyStats first_stats;
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    const int threads = thread_counts[i];
    const auto design = rtlil::clone_design(*prepared);
    ScalingPoint point;
    point.threads = threads;
    opt::DecisionTrace trace;
    core::SatRedundancyOptions sat_options;
    sat_options.guard = &guard; // unlimited: charges totals for the resource block
    const auto t0 = std::chrono::steady_clock::now();
    const core::SatRedundancyStats stats = core::sat_redundancy_parallel(
        *design->top(), sat_options, threads, &trace, &point.sweep);
    point.seconds = seconds_since(t0);
    point.decisions_match = opt::canonical_trace(trace) == serial_canonical;

    const std::string netlist = backend::write_rtlil(*design->top());
    if (i == 0) {
      first_netlist = netlist;
      first_stats = stats;
      row.regions = point.sweep.regions;
      row.largest_region_trees = point.sweep.largest_region_trees;
    } else {
      row.netlist_deterministic = row.netlist_deterministic && netlist == first_netlist;
      row.stats_deterministic = row.stats_deterministic && same_stats(stats, first_stats);
    }
    row.scaling.push_back(point);
  }
  return row;
}

/// speedup_vs_1t anchors on the threads==1 point when the user's --threads
/// list has one, falling back to the first point otherwise.
double anchor_seconds(const Row& r) {
  for (const ScalingPoint& p : r.scaling)
    if (p.threads == 1)
      return p.seconds;
  return r.scaling.empty() ? 0 : r.scaling.front().seconds;
}

void print_json_row(const Row& r, bool last) {
  const double t1 = anchor_seconds(r);
  std::vector<std::string> points;
  points.reserve(r.scaling.size());
  for (const ScalingPoint& p : r.scaling) {
    benchjson::JsonObject sp;
    sp.put("threads", p.threads)
        .putf("seconds", p.seconds)
        .putf("speedup_vs_1t", ratio(t1, p.seconds), 3)
        .putf("speedup_vs_serial", ratio(r.serial_seconds, p.seconds), 3)
        .put("region_walks", p.sweep.region_walks)
        .put("regions_skipped_clean", p.sweep.regions_skipped_clean)
        .put("decisions_match", p.decisions_match);
    points.push_back(sp.str());
  }
  benchjson::JsonObject o;
  o.put("name", r.name)
      .put("queries", r.queries)
      .put("regions", r.regions)
      .put("largest_region_trees", r.largest_region_trees)
      .putf("serial_seconds", r.serial_seconds)
      .put_raw("scaling", benchjson::json_array(points))
      .put("netlist_deterministic", r.netlist_deterministic)
      .put("stats_deterministic", r.stats_deterministic);
  std::printf("    %s%s\n", o.str().c_str(), last ? "" : ",");
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  std::string filter, trace_path;
  std::vector<int> thread_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--filter") == 0 || std::strcmp(argv[i], "--threads") == 0 ||
             std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_pass: %s requires a value\n", argv[i]);
        return 2;
      }
      if (std::strcmp(argv[i], "--filter") == 0) {
        filter = argv[++i];
        continue;
      }
      if (std::strcmp(argv[i], "--trace-out") == 0) {
        trace_path = argv[++i];
        continue;
      }
      thread_counts = benchjson::parse_thread_counts(argv[++i], "bench_pass");
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: bench_pass [--smoke] [--json] [--filter <substr>] "
                  "[--threads <csv, default 1,2,4,8>] [--trace-out FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "bench_pass: unknown option '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (thread_counts.empty())
    thread_counts = smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  std::vector<benchgen::BenchCircuit> circuits;
  if (smoke) {
    for (const auto& c : benchgen::public_suite())
      if (c.name == "pci_bridge32" || c.name == "tv80")
        circuits.push_back(c);
  } else {
    for (const auto& c : benchgen::public_suite())
      if (c.name == "top_cache_axi" || c.name == "wb_conmax")
        circuits.push_back(c);
    const auto industrial = benchgen::industrial_suite();
    for (int tp : {0, 1, 2, 3})
      circuits.push_back(industrial[static_cast<size_t>(tp)]);
  }
  benchjson::apply_name_filter(circuits, filter, "bench_pass");

  benchjson::TraceOutput trace_output;
  trace_output.arm(trace_path);
  const obs::Span root_span("bench", "bench_pass");
  obs::StageProfile profile;

  util::ResourceGuard guard; // unbudgeted: the resource block reports charged totals
  std::vector<Row> rows;
  rows.reserve(circuits.size());
  for (const auto& c : circuits) {
    {
      const auto stage = profile.scope(c.name);
      const obs::Span span("bench", c.name);
      rows.push_back(run_circuit(c, thread_counts, guard));
    }
    if (!json) {
      const Row& r = rows.back();
      std::printf("%-16s %5zu queries  %4zu regions (max %zu trees)  serial %.4fs ",
                  r.name.c_str(), r.queries, r.regions, r.largest_region_trees,
                  r.serial_seconds);
      for (const ScalingPoint& p : r.scaling)
        std::printf(" %dt %.4fs (%.2fx)", p.threads, p.seconds,
                    ratio(anchor_seconds(r), p.seconds));
      bool match = true;
      for (const ScalingPoint& p : r.scaling)
        match = match && p.decisions_match;
      std::printf("  match %s det %s\n", match ? "yes" : "NO",
                  r.netlist_deterministic && r.stats_deterministic ? "yes" : "NO");
    }
  }

  double total_serial = 0, total_1t = 0, total_max = 0;
  int max_threads = 0;
  bool ok = true;
  for (const Row& r : rows) {
    total_serial += r.serial_seconds;
    total_1t += anchor_seconds(r);
    total_max += r.scaling.back().seconds;
    max_threads = r.scaling.back().threads;
    ok = ok && r.netlist_deterministic && r.stats_deterministic;
    for (const ScalingPoint& p : r.scaling)
      ok = ok && p.decisions_match;
  }

  if (json) {
    std::printf("{\n  \"bench\": \"pass\",\n  \"metric\": \"pass_seconds\",\n"
                "  \"hardware_threads\": %u,\n  \"circuits\": [\n",
                std::thread::hardware_concurrency());
    for (size_t i = 0; i < rows.size(); ++i)
      print_json_row(rows[i], i + 1 == rows.size());
    std::printf("  ],\n  \"total\": {\"serial_seconds\": %.4f, \"seconds_1t\": %.4f, "
                "\"seconds_%dt\": %.4f, \"speedup_%dt_vs_1t\": %.3f},\n"
                "  \"resource\": %s,\n  \"obs\": %s\n}\n",
                total_serial, total_1t, max_threads, total_max, max_threads,
                ratio(total_1t, total_max),
                benchjson::resource_json(guard.report()).c_str(),
                benchjson::obs_json(profile).c_str());
  } else {
    std::printf("\nTotal: serial %.4fs, 1t %.4fs, %dt %.4fs (%.2fx vs 1t)\n", total_serial,
                total_1t, max_threads, total_max, ratio(total_1t, total_max));
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: parallel sweep diverged from the serial engine "
                         "or across thread counts\n");
    return 1;
  }
  return 0;
}
