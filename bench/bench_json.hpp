// Shared helpers for the bench_* executables — timing, ratios, circuit
// filtering, design preparation, and BENCH_*.json emission. Extracted from
// the blocks bench_oracle.cpp and bench_pass.cpp used to duplicate;
// bench_sweep.cpp builds on the same kit.
#pragma once

#include "benchgen/public_bench.hpp"
#include "core/mux_restructure.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/pipeline.hpp"
#include "rtlil/module.hpp"
#include "util/budget.hpp"
#include "verilog/elaborate.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace smartly::benchjson {

inline double ratio(double num, double den) { return den > 0 ? num / den : 0.0; }

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Elaborate + the shared pre-pipeline (coarse opts and §III restructuring,
/// as in smartly_flow) so the muxtree benchmarks see realistic muxtrees.
inline std::unique_ptr<rtlil::Design> prepare_muxtree_design(const std::string& verilog) {
  auto design = verilog::read_verilog(verilog);
  rtlil::Module& top = *design->top();
  opt::coarse_opt(top);
  core::mux_restructure(top, {});
  opt::opt_expr(top);
  opt::opt_clean(top);
  return design;
}

/// Keep only circuits whose name contains `filter` (no-op when empty);
/// exits 2 with a message when nothing matches.
inline void apply_name_filter(std::vector<benchgen::BenchCircuit>& circuits,
                              const std::string& filter, const char* prog) {
  if (filter.empty())
    return;
  std::vector<benchgen::BenchCircuit> kept;
  for (auto& c : circuits)
    if (c.name.find(filter) != std::string::npos)
      kept.push_back(std::move(c));
  circuits.swap(kept);
  if (circuits.empty()) {
    std::fprintf(stderr, "%s: --filter '%s' matches no circuit\n", prog, filter.c_str());
    std::exit(2);
  }
}

/// Parse a --threads CSV ("1,2,4,8") into positive ints; exits 2 with a
/// message on malformed input (shared by bench_pass and bench_sweep).
inline std::vector<int> parse_thread_counts(const char* csv, const char* prog) {
  std::vector<int> counts;
  const char* s = csv;
  while (*s) {
    char* end = nullptr;
    const long n = std::strtol(s, &end, 10);
    if (end == s || (*end != '\0' && *end != ',') || n <= 0) {
      std::fprintf(stderr, "%s: --threads wants positive integers, got '%s'\n", prog, s);
      std::exit(2);
    }
    counts.push_back(static_cast<int>(n));
    if (*end == '\0')
      break;
    s = end + 1;
  }
  return counts;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

/// Incremental JSON object builder: comma placement, string escaping, fixed
/// double precision. Objects nest through put_raw (arrays are joined
/// pre-rendered element strings).
class JsonObject {
public:
  JsonObject& put(const char* key, const std::string& v) {
    return put_raw(key, "\"" + json_escape(v) + "\"");
  }
  JsonObject& put(const char* key, const char* v) { return put(key, std::string(v)); }
  JsonObject& put(const char* key, bool v) { return put_raw(key, v ? "true" : "false"); }
  JsonObject& put(const char* key, size_t v) { return put_raw(key, std::to_string(v)); }
  JsonObject& put(const char* key, int v) { return put_raw(key, std::to_string(v)); }
  JsonObject& put(const char* key, unsigned v) { return put_raw(key, std::to_string(v)); }
  JsonObject& put(const char* key, unsigned long long v) {
    return put_raw(key, std::to_string(v));
  }
  JsonObject& putf(const char* key, double v, int decimals = 4) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return put_raw(key, buf);
  }
  JsonObject& put_raw(const char* key, const std::string& rendered) {
    body_ += first_ ? "" : ", ";
    first_ = false;
    body_ += "\"";
    body_ += key;
    body_ += "\": ";
    body_ += rendered;
    return *this;
  }

  std::string str() const { return "{" + body_ + "}"; }

private:
  std::string body_;
  bool first_ = true;
};

/// Render a guard's ResourceReport as the shared `resource` block every
/// BENCH_*.json carries: what the run charged (deterministic totals) and
/// whether a budget halted it (never, for the unbudgeted bench runs — the
/// block exists so budgeted reruns are diffable against the archives).
inline std::string resource_json(const util::ResourceReport& r) {
  JsonObject o;
  o.put("tripped", util::budget_kind_name(r.tripped))
      .put("conflicts", static_cast<unsigned long long>(r.conflicts))
      .put("propagations", static_cast<unsigned long long>(r.propagations))
      .put("skipped_solves", static_cast<unsigned long long>(r.skipped_solves))
      .put("skipped_merges", static_cast<unsigned long long>(r.skipped_merges))
      .put("skipped_rewrites", static_cast<unsigned long long>(r.skipped_rewrites))
      .put("skipped_regions", static_cast<unsigned long long>(r.skipped_regions))
      .put("halted_engines", static_cast<unsigned long long>(r.halted_engines));
  return o.str();
}

/// Render pre-built elements as a JSON array.
inline std::string json_array(const std::vector<std::string>& elements) {
  std::string out = "[";
  for (size_t i = 0; i < elements.size(); ++i) {
    out += elements[i];
    if (i + 1 < elements.size())
      out += ", ";
  }
  return out + "]";
}

/// Render the shared `obs` block every BENCH_*.json carries: per-stage
/// wall/cpu seconds from the bench's StageProfile plus a snapshot of the
/// process-global metrics registry. Timings and scheduling-dependent
/// counters (pool.*) are observability output — check_bench_regression.py
/// gates the block's *schema*, never its timing values.
inline std::string obs_json(const obs::StageProfile& profile) {
  std::vector<std::string> stages;
  for (const obs::StageTiming& s : profile.stages()) {
    JsonObject o;
    o.put("name", s.name).putf("wall_seconds", s.wall_seconds).putf("cpu_seconds",
                                                                    s.cpu_seconds);
    stages.push_back(o.str());
  }
  JsonObject counters;
  for (const auto& [name, value] : obs::Registry::global().snapshot())
    counters.put_raw(name.c_str(), std::to_string(value));
  JsonObject o;
  o.put_raw("stages", json_array(stages)).put_raw("counters", counters.str());
  return o.str();
}

/// Shared --trace-out handling for the bench binaries: arm tracing when a
/// path was given, and write the Chrome trace on scope exit (after the
/// bench's root span has closed — declare the root Span after this).
struct TraceOutput {
  std::string path;
  void arm(const std::string& p) {
    path = p;
    if (!path.empty())
      obs::set_tracing(true);
  }
  ~TraceOutput() {
    if (path.empty())
      return;
    std::string err;
    if (!obs::write_chrome_trace(path, &err))
      std::fprintf(stderr, "bench: --trace-out: %s\n", err.c_str());
  }
};

} // namespace smartly::benchjson
