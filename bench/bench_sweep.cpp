// SAT-sweeping (fraig) engine benchmark: cell counts vs smartly_pass alone,
// SAT/refinement statistics, CEC verification, and thread-count determinism,
// emitting the BENCH_sweep.json schema.
//
//   ./bench_sweep [--smoke] [--json] [--filter <substr>] [--threads <csv>]
//
//   --smoke    small circuit subset, threads {1,2} — the tier-2 CTest target.
//              Exits nonzero if any fraiged netlist fails CEC, any circuit is
//              non-deterministic across thread counts, or no benchmark family
//              shows a strict cell reduction over smartly_pass alone.
//   --json     print the JSON document to stdout (human table otherwise).
//   --filter   run only circuits whose name contains <substr>.
//   --threads  comma-separated worker counts (default 1,2,4,8).
//
// Flow per circuit (three families: public, industrial, random):
//   1. elaborate, keep a golden clone for CEC;
//   2. smartly_flow (the full muxtree pipeline) -> cells_smartly;
//   3. for every thread count: clone the smartly result, fraig_stage ->
//      cells_fraig. All fraiged netlists must be byte-identical and their
//      statistics equal; the first one is CEC'd against the golden design.
#include "aig/aigmap.hpp"
#include "backend/write_rtlil.hpp"
#include "bench_json.hpp"
#include "benchgen/industrial.hpp"
#include "benchgen/random_circuit.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

using namespace smartly;
using benchjson::ratio;
using benchjson::seconds_since;

namespace {

/// Families are derivable from the generator naming scheme, which keeps the
/// work list a plain circuit vector (shared --filter handling).
std::string family_of(const std::string& name) {
  if (name.rfind("industrial", 0) == 0)
    return "industrial";
  if (name.rfind("random_", 0) == 0)
    return "random";
  return "public";
}

struct Row {
  std::string name, family;
  size_t cells_original = 0, cells_smartly = 0, cells_fraig = 0;
  size_t aig_smartly = 0, aig_fraig = 0;
  double smartly_seconds = 0, fraig_seconds = 0; ///< fraig at the first thread count
  sweep::FraigStats fraig;
  bool cec_ok = false;
  bool deterministic = true;
  bool reduced = false; ///< strictly fewer cells than smartly_pass alone
};

Row run_circuit(const benchgen::BenchCircuit& circuit, const std::vector<int>& thread_counts,
                util::ResourceGuard& guard) {
  Row row;
  row.name = circuit.name;
  row.family = family_of(circuit.name);

  const auto golden = verilog::read_verilog(circuit.verilog);
  row.cells_original = golden->top()->cell_count();

  const auto smartly_design = rtlil::clone_design(*golden);
  auto t0 = std::chrono::steady_clock::now();
  core::smartly_flow(*smartly_design->top(), {});
  row.smartly_seconds = seconds_since(t0);
  row.cells_smartly = smartly_design->top()->cell_count();
  row.aig_smartly = aig::aig_area(*smartly_design->top());

  std::string first_netlist;
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    const auto design = rtlil::clone_design(*smartly_design);
    sweep::FraigOptions options;
    options.threads = thread_counts[i];
    options.guard = &guard; // unlimited: charges totals for the resource block
    t0 = std::chrono::steady_clock::now();
    const sweep::FraigStats stats = opt::fraig_stage(*design->top(), options);
    const double seconds = seconds_since(t0);
    const std::string netlist = backend::write_rtlil(*design->top());
    if (i == 0) {
      row.fraig = stats;
      row.fraig_seconds = seconds;
      first_netlist = netlist;
      row.cells_fraig = design->top()->cell_count();
      row.aig_fraig = aig::aig_area(*design->top());
      row.cec_ok = cec::check_equivalence(*golden->top(), *design->top()).equivalent;
    } else {
      row.deterministic = row.deterministic && netlist == first_netlist &&
                          sweep::same_work(stats, row.fraig);
    }
  }
  row.reduced = row.cells_fraig < row.cells_smartly;
  return row;
}

std::string json_row(const Row& r) {
  benchjson::JsonObject o;
  o.put("name", r.name)
      .put("family", r.family)
      .put("cells_original", r.cells_original)
      .put("cells_smartly", r.cells_smartly)
      .put("cells_fraig", r.cells_fraig)
      .put("aig_smartly", r.aig_smartly)
      .put("aig_fraig", r.aig_fraig)
      .put("rounds", r.fraig.rounds)
      .put("candidate_bits", r.fraig.candidate_bits)
      .put("classes", r.fraig.classes)
      .put("sat_queries", r.fraig.sat_queries)
      .put("proved_equal", r.fraig.proved_equal)
      .put("proved_complement", r.fraig.proved_complement)
      .put("proved_constant", r.fraig.proved_constant)
      .put("proved_structural", r.fraig.proved_structural)
      .put("disproved", r.fraig.disproved)
      .put("unknown", r.fraig.unknown)
      .put("cex_refinements", r.fraig.cex_patterns)
      .put("merged_cells", r.fraig.merged_cells)
      .put("inverter_cells", r.fraig.inverter_cells)
      .put("pre_merged", r.fraig.pre_merged)
      .putf("smartly_seconds", r.smartly_seconds)
      .putf("fraig_seconds", r.fraig_seconds)
      .put("cec_ok", r.cec_ok)
      .put("deterministic", r.deterministic)
      .put("reduced_vs_smartly", r.reduced);
  return o.str();
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  std::string filter, trace_path;
  std::vector<int> thread_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--filter") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_sweep: --filter requires a value\n");
        return 2;
      }
      filter = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_sweep: --threads requires a value\n");
        return 2;
      }
      thread_counts = benchjson::parse_thread_counts(argv[++i], "bench_sweep");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_sweep: --trace-out requires a value\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: bench_sweep [--smoke] [--json] [--filter <substr>] "
          "[--threads <csv, default 1,2,4,8>] [--trace-out FILE]\n"
          "\n"
          "SAT-sweeping (fraig) engine benchmark over the public + industrial +\n"
          "random circuit families (BENCH_sweep.json schema). Every fraiged\n"
          "netlist is CEC-verified and must be byte-identical across thread\n"
          "counts; at least one family must show a strict cell reduction over\n"
          "smartly_pass alone.\n");
      return 0;
    } else {
      std::fprintf(stderr, "bench_sweep: unknown option '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (thread_counts.empty())
    thread_counts = smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  // Work list: the three generator families (family derived from the name).
  std::vector<benchgen::BenchCircuit> circuits;
  {
    for (auto& c : benchgen::public_suite())
      if (!smoke || c.name == "pci_bridge32" || c.name == "tv80")
        circuits.push_back(std::move(c));
    if (!smoke) {
      const auto industrial = benchgen::industrial_suite();
      circuits.push_back(industrial[0]);
      circuits.push_back(industrial[1]);
    }
    const std::vector<uint64_t> seeds =
        smoke ? std::vector<uint64_t>{1, 2} : std::vector<uint64_t>{1, 2, 3, 4};
    for (const uint64_t seed : seeds) {
      benchgen::BenchCircuit c;
      c.name = "random_s" + std::to_string(seed);
      c.verilog = benchgen::random_verilog(seed, smoke ? 6 : 8);
      circuits.push_back(std::move(c));
    }
  }
  benchjson::apply_name_filter(circuits, filter, "bench_sweep");

  benchjson::TraceOutput trace_output;
  trace_output.arm(trace_path);
  const obs::Span root_span("bench", "bench_sweep");
  obs::StageProfile profile;

  util::ResourceGuard guard; // unbudgeted: the resource block reports charged totals
  std::vector<Row> rows;
  rows.reserve(circuits.size());
  for (const auto& circuit : circuits) {
    {
      const auto stage = profile.scope(circuit.name);
      const obs::Span span("bench", circuit.name);
      rows.push_back(run_circuit(circuit, thread_counts, guard));
    }
    if (!json) {
      const Row& r = rows.back();
      std::printf("%-16s %-10s cells %5zu -> smartly %5zu -> fraig %5zu  "
                  "(%zu merged, %zu sat, %zu cex)  %.4fs  cec %s det %s\n",
                  r.name.c_str(), r.family.c_str(), r.cells_original, r.cells_smartly,
                  r.cells_fraig, r.fraig.merged_cells, r.fraig.sat_queries,
                  r.fraig.cex_patterns, r.fraig_seconds, r.cec_ok ? "ok" : "FAIL",
                  r.deterministic ? "yes" : "NO");
    }
  }

  size_t total_smartly = 0, total_fraig = 0, total_merged = 0, total_queries = 0,
         total_cex = 0, total_classes = 0;
  double total_seconds = 0;
  bool cec_all = true, det_all = true;
  std::vector<std::string> reduced_families;
  for (const Row& r : rows) {
    total_smartly += r.cells_smartly;
    total_fraig += r.cells_fraig;
    total_merged += r.fraig.merged_cells;
    total_queries += r.fraig.sat_queries;
    total_cex += r.fraig.cex_patterns;
    total_classes += r.fraig.classes;
    total_seconds += r.fraig_seconds;
    cec_all = cec_all && r.cec_ok;
    det_all = det_all && r.deterministic;
    if (r.reduced &&
        std::find(reduced_families.begin(), reduced_families.end(), r.family) ==
            reduced_families.end())
      reduced_families.push_back(r.family);
  }

  if (json) {
    std::vector<std::string> row_json;
    row_json.reserve(rows.size());
    for (const Row& r : rows)
      row_json.push_back("    " + json_row(r));
    std::string circuits_array = "[\n";
    for (size_t i = 0; i < row_json.size(); ++i)
      circuits_array += row_json[i] + (i + 1 == row_json.size() ? "\n" : ",\n");
    circuits_array += "  ]";

    std::vector<std::string> families;
    families.reserve(reduced_families.size());
    for (const std::string& f : reduced_families)
      families.push_back("\"" + benchjson::json_escape(f) + "\"");

    benchjson::JsonObject total;
    total.put("cells_smartly", total_smartly)
        .put("cells_fraig", total_fraig)
        .put("merged_cells", total_merged)
        .put("classes", total_classes)
        .put("sat_queries", total_queries)
        .put("cex_refinements", total_cex)
        .putf("fraig_seconds", total_seconds)
        .put_raw("families_reduced", benchjson::json_array(families))
        .put("cec_all", cec_all)
        .put("deterministic_all", det_all);

    std::printf("{\n  \"bench\": \"sweep\",\n  \"metric\": \"fraig_cells\",\n"
                "  \"hardware_threads\": %u,\n  \"circuits\": %s,\n  \"total\": %s,\n"
                "  \"resource\": %s,\n  \"obs\": %s\n}\n",
                std::thread::hardware_concurrency(), circuits_array.c_str(),
                total.str().c_str(), benchjson::resource_json(guard.report()).c_str(),
                benchjson::obs_json(profile).c_str());
  } else {
    std::printf("\nTotal: smartly %zu cells -> fraig %zu cells (%zu merged), "
                "%zu sat queries, %zu cex, %.4fs; families reduced: %zu\n",
                total_smartly, total_fraig, total_merged, total_queries, total_cex,
                total_seconds, reduced_families.size());
  }

  if (!cec_all) {
    std::fprintf(stderr, "FAIL: a fraiged netlist is not equivalent to its source\n");
    return 1;
  }
  if (!det_all) {
    std::fprintf(stderr, "FAIL: fraig diverged across thread counts\n");
    return 1;
  }
  // The family gate is a suite-level acceptance criterion; a --filter subset
  // is an inspection run where "this circuit didn't reduce" is a valid answer.
  if (reduced_families.empty() && filter.empty()) {
    std::fprintf(stderr, "FAIL: no benchmark family reduced below smartly_pass alone\n");
    return 1;
  }
  return 0;
}
