// Component-level microbenchmarks (google-benchmark): the cost centres of
// the smaRTLy pipeline — frontend elaboration, aigmap bit-blasting, SAT
// solving, sub-graph extraction, inference propagation, ADD construction,
// and the two engines end to end.
#include "aig/aigmap.hpp"
#include "backend/aiger.hpp"
#include "backend/write_verilog.hpp"
#include "cec/cec.hpp"
#include "opt/opt_reduce.hpp"
#include "aig/cnf.hpp"
#include "benchgen/public_bench.hpp"
#include "benchgen/random_circuit.hpp"
#include "core/add.hpp"
#include "core/smartly_pass.hpp"
#include "core/inference.hpp"
#include "core/mux_restructure.hpp"
#include "core/sat_redundancy.hpp"
#include "core/subgraph.hpp"
#include "opt/pipeline.hpp"
#include "sat/solver.hpp"
#include "verilog/elaborate.hpp"

#include <benchmark/benchmark.h>

using namespace smartly;

namespace {

std::string medium_source() {
  benchgen::Profile p;
  p.case_chains = 4;
  p.case_sel_min = 3;
  p.case_sel_max = 4;
  p.dependent = 4;
  p.same_ctrl = 3;
  p.decoders = 2;
  p.datapath = 3;
  p.width = 16;
  return benchgen::generate_circuit("micro", p, 0xBEEF).verilog;
}

void BM_FrontendReadVerilog(benchmark::State& state) {
  const std::string src = medium_source();
  for (auto _ : state) {
    auto d = verilog::read_verilog(src);
    benchmark::DoNotOptimize(d->top()->cell_count());
  }
}
BENCHMARK(BM_FrontendReadVerilog)->Unit(benchmark::kMillisecond);

void BM_Aigmap(benchmark::State& state) {
  auto d = verilog::read_verilog(medium_source());
  for (auto _ : state) {
    const auto m = aig::aigmap(*d->top());
    benchmark::DoNotOptimize(m.aig.num_ands());
  }
}
BENCHMARK(BM_Aigmap)->Unit(benchmark::kMillisecond);

void BM_CoarseOpt(benchmark::State& state) {
  const std::string src = medium_source();
  for (auto _ : state) {
    state.PauseTiming();
    auto d = verilog::read_verilog(src);
    state.ResumeTiming();
    opt::coarse_opt(*d->top());
    benchmark::DoNotOptimize(d->top()->cell_count());
  }
}
BENCHMARK(BM_CoarseOpt)->Unit(benchmark::kMillisecond);

void BM_BaselineOptMuxtree(benchmark::State& state) {
  const std::string src = medium_source();
  for (auto _ : state) {
    state.PauseTiming();
    auto d = verilog::read_verilog(src);
    opt::coarse_opt(*d->top());
    state.ResumeTiming();
    opt::yosys_flow(*d->top());
    benchmark::DoNotOptimize(d->top()->cell_count());
  }
}
BENCHMARK(BM_BaselineOptMuxtree)->Unit(benchmark::kMillisecond);

void BM_SatRedundancy(benchmark::State& state) {
  const std::string src = medium_source();
  for (auto _ : state) {
    state.PauseTiming();
    auto d = verilog::read_verilog(src);
    opt::coarse_opt(*d->top());
    state.ResumeTiming();
    const auto stats = core::sat_redundancy(*d->top(), {});
    benchmark::DoNotOptimize(stats.queries);
  }
}
BENCHMARK(BM_SatRedundancy)->Unit(benchmark::kMillisecond);

void BM_MuxRestructure(benchmark::State& state) {
  const std::string src = medium_source();
  for (auto _ : state) {
    state.PauseTiming();
    auto d = verilog::read_verilog(src);
    opt::coarse_opt(*d->top());
    state.ResumeTiming();
    const auto stats = core::mux_restructure(*d->top(), {});
    benchmark::DoNotOptimize(stats.trees_rebuilt);
  }
}
BENCHMARK(BM_MuxRestructure)->Unit(benchmark::kMillisecond);

// --- SAT solver ---------------------------------------------------------------

void BM_SatSolverPigeonhole(benchmark::State& state) {
  // n pigeons, n-1 holes: classically hard UNSAT instance family.
  const int n = int(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<sat::Var>> v;
    v.resize(size_t(n));
    for (int p = 0; p < n; ++p)
      for (int h = 0; h < n - 1; ++h)
        v[size_t(p)].push_back(s.new_var());
    for (int p = 0; p < n; ++p) {
      std::vector<sat::Lit> clause;
      for (int h = 0; h < n - 1; ++h)
        clause.push_back(sat::mk_lit(v[size_t(p)][size_t(h)]));
      s.add_clause(std::move(clause));
    }
    for (int h = 0; h < n - 1; ++h)
      for (int p1 = 0; p1 < n; ++p1)
        for (int p2 = p1 + 1; p2 < n; ++p2)
          s.add_clause(~sat::mk_lit(v[size_t(p1)][size_t(h)]),
                       ~sat::mk_lit(v[size_t(p2)][size_t(h)]));
    const auto r = s.solve();
    if (r != sat::Result::Unsat)
      state.SkipWithError("pigeonhole must be UNSAT");
  }
}
BENCHMARK(BM_SatSolverPigeonhole)->Arg(7)->Arg(8)->Arg(9);

void BM_SatMiterEquivalent(benchmark::State& state) {
  // Miter of a circuit against itself after strash: UNSAT proof workload
  // representative of the per-query cost in §II.
  rtlil::Design d;
  rtlil::Module* m = benchgen::random_netlist(d, "m", 31, int(state.range(0)));
  const auto am = aig::aigmap(*m);
  for (auto _ : state) {
    sat::Solver s;
    aig::CnfEncoder enc(s);
    enc.encode(am.aig);
    // Assert output0 != output0 (trivially UNSAT but exercises encode+solve).
    if (am.aig.num_outputs() == 0) {
      state.SkipWithError("no outputs");
      break;
    }
    const sat::Lit o = enc.lit(am.aig.output(0));
    const auto r = s.solve({o, ~o});
    if (r != sat::Result::Unsat)
      state.SkipWithError("x & !x must be UNSAT");
  }
}
BENCHMARK(BM_SatMiterEquivalent)->Arg(50)->Arg(200);

// --- core data structures ------------------------------------------------------

void BM_SubgraphExtraction(benchmark::State& state) {
  auto d = verilog::read_verilog(medium_source());
  rtlil::Module& top = *d->top();
  opt::coarse_opt(top);
  const rtlil::NetlistIndex index(top);
  // Pick the first mux control bit as the target.
  rtlil::SigBit target;
  for (const auto& c : top.cells())
    if (c->type() == rtlil::CellType::Mux) {
      target = index.sigmap()(c->port(rtlil::Port::S)[0]);
      break;
    }
  for (auto _ : state) {
    const auto sg = core::extract_subgraph(top, index, target, {}, {});
    benchmark::DoNotOptimize(sg.cells.size());
  }
}
BENCHMARK(BM_SubgraphExtraction);

void BM_AddBuildGreedy(benchmark::State& state) {
  const int bits = int(state.range(0));
  Rng rng(99);
  std::vector<int> table(size_t(1) << bits);
  for (auto& t : table)
    t = int(rng.range(0, 7));
  for (auto _ : state) {
    const auto add = core::build_add(table, bits);
    benchmark::DoNotOptimize(add.internal_nodes());
  }
}
BENCHMARK(BM_AddBuildGreedy)->Arg(4)->Arg(8)->Arg(12);

void BM_InferencePropagation(benchmark::State& state) {
  // Long or-chain: worst-case linear propagation front.
  rtlil::Design d;
  rtlil::Module* m = d.add_module("chain");
  rtlil::Wire* a = m->add_wire("a", 1);
  m->set_port_input(a);
  rtlil::SigSpec acc(a);
  const int n = int(state.range(0));
  for (int i = 0; i < n; ++i) {
    rtlil::Wire* w = m->add_wire("w" + std::to_string(i), 1);
    m->set_port_input(w);
    acc = m->Or(acc, rtlil::SigSpec(w));
  }
  rtlil::Wire* y = m->add_wire("y", 1);
  m->set_port_output(y);
  m->connect(rtlil::SigSpec(y), acc);
  const rtlil::SigMap sigmap(*m);
  std::vector<rtlil::Cell*> cells;
  for (const auto& c : m->cells())
    cells.push_back(c.get());

  for (auto _ : state) {
    core::InferenceEngine e(cells, sigmap);
    e.assume(rtlil::SigBit(a, 0), true);
    const bool ok = e.propagate();
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(e.num_known());
  }
}
BENCHMARK(BM_InferencePropagation)->Arg(64)->Arg(512);

void BM_CecSelfCheck(benchmark::State& state) {
  // Equivalence of a design against its smartly-optimized form: the
  // dominating verification cost in the table benches (--check).
  const std::string src = medium_source();
  auto gold = verilog::read_verilog(src);
  auto gate = verilog::read_verilog(src);
  core::smartly_flow(*gate->top());
  for (auto _ : state) {
    const auto r = cec::check_equivalence(*gold->top(), *gate->top());
    if (!r.equivalent)
      state.SkipWithError("optimizer broke the design");
  }
}
BENCHMARK(BM_CecSelfCheck)->Unit(benchmark::kMillisecond);

void BM_WriteVerilog(benchmark::State& state) {
  auto d = verilog::read_verilog(medium_source());
  for (auto _ : state) {
    const std::string text = backend::write_verilog(*d->top());
    benchmark::DoNotOptimize(text.size());
  }
}
BENCHMARK(BM_WriteVerilog)->Unit(benchmark::kMillisecond);

void BM_AigerRoundTrip(benchmark::State& state) {
  auto d = verilog::read_verilog(medium_source());
  const auto m = aig::aigmap(*d->top());
  for (auto _ : state) {
    const std::string text = backend::write_aiger_binary(m.aig);
    const aig::Aig back = backend::read_aiger(text);
    benchmark::DoNotOptimize(back.num_ands());
  }
}
BENCHMARK(BM_AigerRoundTrip)->Unit(benchmark::kMillisecond);

void BM_OptReduce(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rtlil::Design d;
    rtlil::Module* m = benchgen::random_netlist(d, "m", 77, 200);
    state.ResumeTiming();
    const auto stats = opt::opt_reduce(*m);
    benchmark::DoNotOptimize(stats.pmux_branches_merged);
  }
}
BENCHMARK(BM_OptReduce);

} // namespace

BENCHMARK_MAIN();
