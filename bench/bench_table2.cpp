// Reproduces Table II of the paper: AIG area of each public benchmark
// circuit, original vs Yosys (baseline opt_muxtree) vs smaRTLy, and the
// percentage of area removed by smaRTLy relative to Yosys.
//
//   ./bench_table2 [--check]     (--check also runs CEC on every result)
//
// The circuits are synthetic stand-ins for IWLS-2005 / RISC-V (see
// DESIGN.md, "Substitutions"): absolute areas are laptop-scaled, the
// *relative* behaviour (who wins, by roughly what factor, and which circuits
// favour which engine) is the reproduced quantity.
#include "aig/aigmap.hpp"
#include "benchgen/public_bench.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/pipeline.hpp"
#include "verilog/elaborate.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace smartly;

namespace {

struct Row {
  std::string name;
  size_t original = 0;
  size_t yosys = 0;
  size_t smartly = 0;
  double seconds = 0;
};

size_t flow_area(const std::string& src, int which, bool check) {
  auto design = verilog::read_verilog(src);
  rtlil::Module& top = *design->top();
  std::unique_ptr<rtlil::Design> golden;
  if (check && which != 0)
    golden = rtlil::clone_design(*design);
  switch (which) {
  case 0: opt::original_flow(top); break;
  case 1: opt::yosys_flow(top); break;
  default: core::smartly_flow(top); break;
  }
  if (golden) {
    const auto r = cec::check_equivalence(*golden->top(), top);
    if (!r.equivalent) {
      std::fprintf(stderr, "EQUIVALENCE FAILURE (flow %d) at output %s\n", which,
                   r.failing_output.c_str());
      std::exit(1);
    }
  }
  return aig::aig_area(top);
}

} // namespace

int main(int argc, char** argv) {
  const bool check = argc > 1 && std::strcmp(argv[1], "--check") == 0;

  std::printf("Table II: AIG areas, Yosys baseline vs smaRTLy%s\n",
              check ? " (with equivalence checking)" : "");
  std::printf("%-16s %10s %10s %10s %9s\n", "Case", "Original", "Yosys", "smaRTLy", "Ratio");

  double sum_ratio = 0;
  size_t sum_orig = 0, sum_yosys = 0, sum_smartly = 0;
  int n = 0;
  for (const benchgen::BenchCircuit& c : benchgen::public_suite()) {
    Row row;
    row.name = c.name;
    const auto t0 = std::chrono::steady_clock::now();
    row.original = flow_area(c.verilog, 0, check);
    row.yosys = flow_area(c.verilog, 1, check);
    row.smartly = flow_area(c.verilog, 2, check);
    row.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    const double ratio =
        row.yosys == 0 ? 0.0
                       : 100.0 * (double(row.yosys) - double(row.smartly)) / double(row.yosys);
    std::printf("%-16s %10zu %10zu %10zu %8.2f%%   (%.2fs)\n", row.name.c_str(),
                row.original, row.yosys, row.smartly, ratio, row.seconds);
    sum_ratio += ratio;
    sum_orig += row.original;
    sum_yosys += row.yosys;
    sum_smartly += row.smartly;
    ++n;
  }
  std::printf("%-16s %10.1f %10.1f %10.1f %8.2f%%\n", "Average", double(sum_orig) / n,
              double(sum_yosys) / n, double(sum_smartly) / n, sum_ratio / n);
  std::printf("\nPaper reports an average extra reduction of 8.95%% over Yosys "
              "(range 0.53%%-27.79%%).\n");
  return 0;
}
