// Ablation studies over smaRTLy's design choices (DESIGN.md, "Ablations"):
//
//   A1  sub-graph distance k          (paper §II: too small misses context,
//                                      too large bloats the SAT query)
//   A2  Theorem II.1 relevance filter (paper: dismisses ~80% of ball gates)
//   A3  Table I inference rules       (cheap pre-pass before sim/SAT)
//   A4  simulation/SAT split point    (sim_max_inputs threshold)
//   A5  greedy vs fixed ADD order     (paper Listing 2: 3 vs 7 muxes)
//   A6  the Check() profitability gate (skip_check can hurt)
//
// Each section prints the quality (final AIG area) and the relevant internal
// statistics so the trade-off the paper argues for is visible in one run.
#include "aig/aigmap.hpp"
#include "benchgen/public_bench.hpp"
#include "benchgen/verilog_gen.hpp"
#include "core/smartly_pass.hpp"
#include "opt/pipeline.hpp"
#include "verilog/elaborate.hpp"

#include <chrono>
#include <cstdio>
#include <string>

using namespace smartly;

namespace {

std::string ablation_source() {
  // Hand-mixed workload: shallow dependent nests (decidable at any k), deep
  // or-chains (length 12: only large k can prove the far control forced),
  // rebuildable case trees, and neutral filler — so every ablation axis has
  // something to show.
  benchgen::VerilogGen g("ablation", 0x5EED);
  for (int i = 0; i < 4; ++i)
    g.expose(g.case_chain(4, 8, 12, i % 2 == 0), 12);
  for (int i = 0; i < 4; ++i)
    g.expose(g.dependent_select(12, 3), 12);
  for (int i = 0; i < 3; ++i)
    g.expose(g.dependent_chain(12, 12), 12);
  for (int i = 0; i < 2; ++i)
    g.expose(g.same_ctrl_redundant(12), 12);
  for (int i = 0; i < 2; ++i)
    g.expose(g.datapath(12, 3), 12);
  return g.finish();
}

struct RunResult {
  size_t area = 0;
  double ms = 0;
  core::SmartlyStats stats;
};

RunResult run(const std::string& src, const core::SmartlyOptions& opt) {
  auto d = verilog::read_verilog(src);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.stats = core::smartly_flow(*d->top(), opt);
  r.ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
             .count();
  r.area = aig::aig_area(*d->top());
  return r;
}

} // namespace

int main() {
  const std::string src = ablation_source();

  std::printf("=== A1: sub-graph distance k ===\n");
  std::printf("%4s %10s %10s %12s %12s\n", "k", "area", "ms", "gates_seen", "decided");
  for (int k : {1, 2, 4, 8, 16}) {
    core::SmartlyOptions opt;
    opt.sat.subgraph.depth = k;
    const RunResult r = run(src, opt);
    std::printf("%4d %10zu %10.1f %12zu %12zu\n", k, r.area, r.ms, r.stats.sat.gates_seen,
                r.stats.sat.decided_inference + r.stats.sat.decided_sim +
                    r.stats.sat.decided_sat);
  }

  std::printf("\n=== A2: Theorem II.1 relevance filter ===\n");
  std::printf("%8s %10s %10s %12s %12s %9s\n", "filter", "area", "ms", "gates_seen",
              "gates_kept", "kept%");
  for (bool filter : {true, false}) {
    core::SmartlyOptions opt;
    opt.sat.subgraph.relevance_filter = filter;
    const RunResult r = run(src, opt);
    const double kept_pct = r.stats.sat.gates_seen == 0
                                ? 0.0
                                : 100.0 * double(r.stats.sat.gates_kept) /
                                      double(r.stats.sat.gates_seen);
    std::printf("%8s %10zu %10.1f %12zu %12zu %8.1f%%\n", filter ? "on" : "off", r.area,
                r.ms, r.stats.sat.gates_seen, r.stats.sat.gates_kept, kept_pct);
  }
  std::printf("(paper: the filter dismisses ~80%% of the gates in the sub-graph)\n");

  std::printf("\n=== A3: Table I inference rules ===\n");
  std::printf("%6s %10s %10s %12s %10s %10s\n", "rules", "area", "ms", "by_inference",
              "by_sim", "by_sat");
  for (bool rules : {true, false}) {
    core::SmartlyOptions opt;
    opt.sat.use_inference = rules;
    const RunResult r = run(src, opt);
    std::printf("%6s %10zu %10.1f %12zu %10zu %10zu\n", rules ? "on" : "off", r.area, r.ms,
                r.stats.sat.decided_inference, r.stats.sat.decided_sim,
                r.stats.sat.decided_sat);
  }

  std::printf("\n=== A4: simulation vs SAT split (sim_max_inputs) ===\n");
  std::printf("%6s %10s %10s %10s %10s\n", "split", "area", "ms", "by_sim", "by_sat");
  for (int split : {0, 6, 14, 20}) {
    core::SmartlyOptions opt;
    opt.sat.sim_max_inputs = split;
    opt.sat.use_inference = false; // route everything through stage 4
    const RunResult r = run(src, opt);
    std::printf("%6d %10zu %10.1f %10zu %10zu\n", split, r.area, r.ms, r.stats.sat.decided_sim,
                r.stats.sat.decided_sat);
  }

  std::printf("\n=== A5: ADD variable order (greedy heuristic vs fixed) ===\n");
  std::printf("%8s %10s %12s %12s\n", "order", "area", "mux_added", "mux_removed");
  for (bool greedy : {true, false}) {
    core::SmartlyOptions opt;
    opt.rebuild.greedy_order = greedy;
    const RunResult r = run(src, opt);
    std::printf("%8s %10zu %12zu %12zu\n", greedy ? "greedy" : "fixed", r.area,
                r.stats.rebuild.mux_added, r.stats.rebuild.mux_removed);
  }
  std::printf("(paper Listing 2: good order 3 muxes, poor order 7)\n");

  std::printf("\n=== A6: the Check() profitability gate ===\n");
  std::printf("%8s %10s %12s\n", "check", "area", "trees_rebuilt");
  for (bool skip : {false, true}) {
    core::SmartlyOptions opt;
    opt.rebuild.skip_check = skip;
    const RunResult r = run(src, opt);
    std::printf("%8s %10zu %12zu\n", skip ? "off" : "on", r.area, r.stats.rebuild.trees_rebuilt);
  }
  std::printf("(paper: rebuilding every eligible tree \"may even deteriorate the "
              "circuit\")\n");
  return 0;
}
