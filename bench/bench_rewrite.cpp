// DAG-aware cut-rewriting engine benchmark: AIG area and cell counts on top
// of the fraig stage, NPN/cut statistics, CEC verification, and thread-count
// determinism, emitting the BENCH_rewrite.json schema.
//
//   ./bench_rewrite [--smoke] [--json] [--filter <substr>] [--threads <csv>]
//
//   --smoke    small circuit subset, threads {1,2} — the tier-2 CTest target.
//              Exits nonzero if any rewritten netlist fails CEC, any circuit
//              is non-deterministic across thread counts, or no benchmark
//              family shows a strict AIG-area reduction over the fraig stage
//              alone.
//   --json     print the JSON document to stdout (human table otherwise).
//   --filter   run only circuits whose name contains <substr>.
//   --threads  comma-separated worker counts (default 1,2,4,8).
//
// Flow per circuit (three families: public, industrial, random):
//   1. elaborate, keep a golden clone for CEC;
//   2. smartly_flow + fraig_stage -> cells_fraig / aig_fraig (the baseline
//      the rewrite must improve on);
//   3. for every thread count: clone the fraiged design, rewrite_stage, then
//      a fraig harvest pass (merges the restructuring exposed). All rewritten
//      netlists must be byte-identical and their statistics equal; the first
//      one is CEC'd against the golden design.
//
// The gated metric is AIG area (reachable AND gates after aigmap) — the
// paper's cell count. Word-level cell counts are also reported and must
// never increase (the engine's commit gate enforces it).
#include "aig/aigmap.hpp"
#include "backend/write_rtlil.hpp"
#include "bench_json.hpp"
#include "benchgen/industrial.hpp"
#include "benchgen/random_circuit.hpp"
#include "benchgen/scale.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "rewrite/rewrite_engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace smartly;
using benchjson::seconds_since;

namespace {

std::string family_of(const std::string& name) {
  if (name.rfind("industrial", 0) == 0)
    return "industrial";
  if (name.rfind("random_", 0) == 0)
    return "random";
  return "public";
}

struct Row {
  std::string name, family;
  size_t cells_original = 0, cells_fraig = 0, cells_rewrite = 0;
  size_t aig_fraig = 0, aig_rewrite = 0;
  double rewrite_seconds = 0; ///< rewrite_stage + fraig harvest, first thread count
  rewrite::RewriteStats stats;
  bool cec_ok = false;
  bool deterministic = true;
  bool reduced_aig = false;   ///< strictly smaller AIG than the fraig stage alone
  bool reduced_cells = false; ///< strictly fewer word-level cells
};

Row run_circuit(const benchgen::BenchCircuit& circuit, const std::vector<int>& thread_counts,
                util::ResourceGuard& guard) {
  Row row;
  row.name = circuit.name;
  row.family = family_of(circuit.name);

  const auto golden = verilog::read_verilog(circuit.verilog);
  row.cells_original = golden->top()->cell_count();

  // Baseline: the full muxtree pipeline plus the fraig stage.
  const auto base = rtlil::clone_design(*golden);
  core::smartly_flow(*base->top(), {});
  sweep::FraigOptions fraig_base;
  fraig_base.threads = 1;
  opt::fraig_stage(*base->top(), fraig_base);
  row.cells_fraig = base->top()->cell_count();
  row.aig_fraig = aig::aig_area(*base->top());

  std::string first_netlist;
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    const auto design = rtlil::clone_design(*base);
    rewrite::RewriteOptions options;
    options.threads = thread_counts[i];
    options.guard = &guard; // unlimited: charges totals for the resource block
    sweep::FraigOptions harvest;
    harvest.threads = thread_counts[i];
    harvest.guard = &guard;
    auto t0 = std::chrono::steady_clock::now();
    const rewrite::RewriteStats stats = opt::rewrite_stage(*design->top(), options);
    opt::fraig_stage(*design->top(), harvest);
    const double seconds = seconds_since(t0);
    const std::string netlist = backend::write_rtlil(*design->top());
    if (i == 0) {
      row.stats = stats;
      row.rewrite_seconds = seconds;
      first_netlist = netlist;
      row.cells_rewrite = design->top()->cell_count();
      row.aig_rewrite = aig::aig_area(*design->top());
      row.cec_ok = cec::check_equivalence(*golden->top(), *design->top()).equivalent;
    } else {
      row.deterministic = row.deterministic && netlist == first_netlist &&
                          rewrite::same_work(stats, row.stats);
    }
  }
  row.reduced_aig = row.aig_rewrite < row.aig_fraig;
  row.reduced_cells = row.cells_rewrite < row.cells_fraig;
  return row;
}

std::string json_row(const Row& r) {
  benchjson::JsonObject o;
  o.put("name", r.name)
      .put("family", r.family)
      .put("cells_original", r.cells_original)
      .put("cells_fraig", r.cells_fraig)
      .put("cells_rewrite", r.cells_rewrite)
      .put("aig_fraig", r.aig_fraig)
      .put("aig_rewrite", r.aig_rewrite)
      .put("rounds", r.stats.rounds)
      .put("aig_nodes", r.stats.aig_nodes)
      .put("cuts", r.stats.cuts)
      .put("roots_evaluated", r.stats.roots_evaluated)
      .put("candidates", r.stats.candidates)
      .put("npn_classes", r.stats.npn_classes)
      .put("rewrites", r.stats.rewrites)
      .put("zero_gain_rewrites", r.stats.zero_gain_rewrites)
      .put("plans_rejected", r.stats.plans_rejected)
      .put("plans_noop", r.stats.plans_noop)
      .put("cells_added", r.stats.cells_added)
      .put("gates_reused", r.stats.gates_reused)
      .put("cells_shared", r.stats.cells_shared)
      .put("predicted_dead", r.stats.predicted_dead)
      .putf("rewrite_seconds", r.rewrite_seconds)
      .put("cec_ok", r.cec_ok)
      .put("deterministic", r.deterministic)
      .put("reduced_aig", r.reduced_aig)
      .put("reduced_cells", r.reduced_cells);
  return o.str();
}

// ---------------------------------------------------------------------------
// Scaling mode (--scale-nodes N): multi-million-AIG-node generated families.
//
// The classic suite above answers "does rewriting shrink real circuits"; at
// its sizes the per-round fixed costs dominate and thread-scaling curves are
// flat. This mode answers "does the barrier-free reservation pipeline scale":
// it generates the scale_random / scale_industrial families (benchgen/scale)
// at a target AIG-node budget, runs the rewrite engine alone (no frontend, no
// fraig, no CEC — a SAT sweep at this size would dwarf the engine under test)
// once per thread count, and emits the BENCH_rewrite_scaling.json schema with
// a per-row "scaling" curve shaped like bench_pass's. Byte-identity across
// thread counts is still asserted in-binary; the minimum 4-thread speedup is
// gated by scripts/check_bench_regression.py, which can see whether the run
// machine actually had the cores (hardware_threads).
// ---------------------------------------------------------------------------

struct ScalePoint {
  int threads = 0;
  double seconds = 0;
};

struct ScaleRow {
  std::string name, family;
  size_t target_nodes = 0;
  size_t cells = 0; ///< generated word-level cells
  rewrite::RewriteStats stats;
  bool deterministic = true;
  std::vector<ScalePoint> scaling;
};

/// speedup_vs_1t anchors on the threads==1 point (first point otherwise).
double scale_anchor_seconds(const ScaleRow& r) {
  for (const ScalePoint& p : r.scaling)
    if (p.threads == 1)
      return p.seconds;
  return r.scaling.empty() ? 0.0 : r.scaling.front().seconds;
}

double ratio_or_zero(double num, double den) { return den > 0 ? num / den : 0.0; }

ScaleRow run_scale_circuit(const std::string& family, size_t target_nodes,
                           const std::vector<int>& thread_counts,
                           util::ResourceGuard& guard) {
  ScaleRow row;
  row.family = family;
  row.target_nodes = target_nodes;
  row.name = family + "_" + std::to_string(target_nodes / 1000) + "k";

  rtlil::Design design;
  benchgen::ScaleSpec spec;
  spec.seed = 1;
  spec.target_aig_nodes = target_nodes;
  if (family == "scale_random")
    benchgen::scale_random_netlist(design, row.name, spec);
  else
    benchgen::scale_industrial_netlist(design, row.name, spec);
  row.cells = design.top()->cell_count();

  std::string first_netlist;
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    const auto clone = rtlil::clone_design(design);
    rewrite::RewriteOptions options;
    options.threads = thread_counts[i];
    options.guard = &guard;
    const auto t0 = std::chrono::steady_clock::now();
    const rewrite::RewriteStats stats = rewrite::rewrite_sweep(*clone->top(), options);
    const double seconds = seconds_since(t0);
    const std::string netlist = backend::write_rtlil(*clone->top());
    if (i == 0) {
      row.stats = stats;
      first_netlist = netlist;
    } else {
      row.deterministic = row.deterministic && netlist == first_netlist &&
                          rewrite::same_work(stats, row.stats);
    }
    row.scaling.push_back({thread_counts[i], seconds});
  }
  return row;
}

std::string json_scale_row(const ScaleRow& r) {
  const double t1 = scale_anchor_seconds(r);
  std::vector<std::string> points;
  points.reserve(r.scaling.size());
  for (const ScalePoint& p : r.scaling) {
    benchjson::JsonObject o;
    o.put("threads", p.threads)
        .putf("seconds", p.seconds)
        .putf("speedup_vs_1t", ratio_or_zero(t1, p.seconds), 3);
    points.push_back(o.str());
  }
  benchjson::JsonObject o;
  o.put("name", r.name)
      .put("family", r.family)
      .put("target_aig_nodes", r.target_nodes)
      .put("cells", r.cells)
      .put("aig_nodes", r.stats.aig_nodes)
      .put("rounds", r.stats.rounds)
      .put("roots_evaluated", r.stats.roots_evaluated)
      .put("candidates", r.stats.candidates)
      .put("rewrites", r.stats.rewrites)
      .put("cells_added", r.stats.cells_added)
      .put("deterministic", r.deterministic)
      .put_raw("scaling", benchjson::json_array(points));
  return o.str();
}

int run_scale_mode(size_t target_nodes, const std::vector<int>& thread_counts, bool json,
                   const std::string& filter, const std::string& trace_path) {
  benchjson::TraceOutput trace_output;
  trace_output.arm(trace_path);
  const obs::Span root_span("bench", "bench_rewrite_scaling");
  obs::StageProfile profile;
  util::ResourceGuard guard;

  std::vector<std::string> families = {"scale_random", "scale_industrial"};
  if (!filter.empty()) {
    families.erase(std::remove_if(families.begin(), families.end(),
                                  [&](const std::string& f) {
                                    return f.find(filter) == std::string::npos;
                                  }),
                   families.end());
    if (families.empty()) {
      std::fprintf(stderr, "bench_rewrite: --filter '%s' matches no scale family\n",
                   filter.c_str());
      return 2;
    }
  }

  std::vector<ScaleRow> rows;
  rows.reserve(families.size());
  for (const std::string& family : families) {
    {
      const auto stage = profile.scope(family);
      const obs::Span span("bench", family);
      rows.push_back(run_scale_circuit(family, target_nodes, thread_counts, guard));
    }
    if (!json) {
      const ScaleRow& r = rows.back();
      std::printf("%-24s cells %8zu  aig %9zu  rewrites %7zu  det %s\n", r.name.c_str(),
                  r.cells, r.stats.aig_nodes, r.stats.rewrites,
                  r.deterministic ? "yes" : "NO");
      for (const ScalePoint& p : r.scaling)
        std::printf("  threads %d: %8.3fs  (%.2fx vs 1t)\n", p.threads, p.seconds,
                    ratio_or_zero(scale_anchor_seconds(r), p.seconds));
    }
  }

  bool det_all = true;
  double total_1t = 0, total_4t = 0;
  bool have_4t = false;
  for (const ScaleRow& r : rows) {
    det_all = det_all && r.deterministic;
    total_1t += scale_anchor_seconds(r);
    for (const ScalePoint& p : r.scaling)
      if (p.threads == 4) {
        total_4t += p.seconds;
        have_4t = true;
      }
  }

  if (json) {
    std::vector<std::string> row_json;
    row_json.reserve(rows.size());
    for (const ScaleRow& r : rows)
      row_json.push_back("    " + json_scale_row(r));
    std::string circuits_array = "[\n";
    for (size_t i = 0; i < row_json.size(); ++i)
      circuits_array += row_json[i] + (i + 1 == row_json.size() ? "\n" : ",\n");
    circuits_array += "  ]";

    benchjson::JsonObject total;
    total.put("target_aig_nodes", target_nodes)
        .putf("seconds_1t", total_1t)
        .putf("seconds_4t", have_4t ? total_4t : 0.0)
        .putf("speedup_4t_vs_1t", have_4t ? ratio_or_zero(total_1t, total_4t) : 0.0, 3)
        .put("deterministic_all", det_all);

    std::printf("{\n  \"bench\": \"rewrite_scaling\",\n  \"metric\": \"rewrite_seconds\",\n"
                "  \"hardware_threads\": %u,\n  \"circuits\": %s,\n  \"total\": %s,\n"
                "  \"resource\": %s,\n  \"obs\": %s\n}\n",
                std::thread::hardware_concurrency(), circuits_array.c_str(),
                total.str().c_str(), benchjson::resource_json(guard.report()).c_str(),
                benchjson::obs_json(profile).c_str());
  } else if (have_4t) {
    std::printf("\nTotal: 1t %.3fs, 4t %.3fs, speedup %.2fx\n", total_1t, total_4t,
                ratio_or_zero(total_1t, total_4t));
  }

  if (!det_all) {
    std::fprintf(stderr, "FAIL: scale rewrite diverged across thread counts\n");
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  std::string filter, trace_path;
  std::vector<int> thread_counts;
  size_t scale_nodes = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--scale-nodes") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_rewrite: --scale-nodes requires a value\n");
        return 2;
      }
      scale_nodes = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (scale_nodes == 0) {
        std::fprintf(stderr, "bench_rewrite: --scale-nodes must be a positive integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--filter") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_rewrite: --filter requires a value\n");
        return 2;
      }
      filter = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_rewrite: --threads requires a value\n");
        return 2;
      }
      thread_counts = benchjson::parse_thread_counts(argv[++i], "bench_rewrite");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_rewrite: --trace-out requires a value\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: bench_rewrite [--smoke] [--json] [--filter <substr>] "
          "[--threads <csv, default 1,2,4,8>] [--trace-out FILE] [--scale-nodes N]\n"
          "\n"
          "DAG-aware cut-rewriting engine benchmark over the public + industrial\n"
          "+ random circuit families (BENCH_rewrite.json schema). Every rewritten\n"
          "netlist is CEC-verified and must be byte-identical across thread\n"
          "counts; the AIG area (the paper's cell metric) must shrink strictly\n"
          "below the fraig stage alone in at least one family (--smoke) or in\n"
          "every family (full run).\n"
          "\n"
          "--scale-nodes N switches to the thread-scaling mode: generate the\n"
          "scale_random / scale_industrial families at ~N AIG nodes, run the\n"
          "rewrite engine alone per thread count, and emit the\n"
          "BENCH_rewrite_scaling.json schema (per-row \"scaling\" curves; CEC is\n"
          "skipped, byte-identity across thread counts is still enforced).\n");
      return 0;
    } else {
      std::fprintf(stderr, "bench_rewrite: unknown option '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (thread_counts.empty())
    thread_counts = smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  if (scale_nodes > 0)
    return run_scale_mode(scale_nodes, thread_counts, json, filter, trace_path);

  std::vector<benchgen::BenchCircuit> circuits;
  {
    for (auto& c : benchgen::public_suite())
      if (!smoke || c.name == "pci_bridge32" || c.name == "tv80")
        circuits.push_back(std::move(c));
    if (!smoke) {
      const auto industrial = benchgen::industrial_suite();
      circuits.push_back(industrial[0]);
      circuits.push_back(industrial[1]);
    }
    const std::vector<uint64_t> seeds =
        smoke ? std::vector<uint64_t>{1, 2} : std::vector<uint64_t>{1, 2, 3, 4};
    for (const uint64_t seed : seeds) {
      benchgen::BenchCircuit c;
      c.name = "random_s" + std::to_string(seed);
      c.verilog = benchgen::random_verilog(seed, smoke ? 6 : 8);
      circuits.push_back(std::move(c));
    }
  }
  benchjson::apply_name_filter(circuits, filter, "bench_rewrite");

  benchjson::TraceOutput trace_output;
  trace_output.arm(trace_path);
  const obs::Span root_span("bench", "bench_rewrite");
  obs::StageProfile profile;

  util::ResourceGuard guard; // unbudgeted: the resource block reports charged totals

  std::vector<Row> rows;
  rows.reserve(circuits.size());
  for (const auto& circuit : circuits) {
    {
      const auto stage = profile.scope(circuit.name);
      const obs::Span span("bench", circuit.name);
      rows.push_back(run_circuit(circuit, thread_counts, guard));
    }
    if (!json) {
      const Row& r = rows.back();
      std::printf("%-16s %-10s aig %6zu -> %6zu  cells %5zu -> %5zu  "
                  "(%zu rw, %zu zg, %zu add, %zu shared)  %.4fs  cec %s det %s\n",
                  r.name.c_str(), r.family.c_str(), r.aig_fraig, r.aig_rewrite,
                  r.cells_fraig, r.cells_rewrite, r.stats.rewrites,
                  r.stats.zero_gain_rewrites, r.stats.cells_added, r.stats.cells_shared,
                  r.rewrite_seconds, r.cec_ok ? "ok" : "FAIL",
                  r.deterministic ? "yes" : "NO");
    }
  }

  size_t total_cells_fraig = 0, total_cells_rewrite = 0, total_aig_fraig = 0,
         total_aig_rewrite = 0, total_rewrites = 0, total_added = 0, total_shared = 0;
  double total_seconds = 0;
  bool cec_all = true, det_all = true, cells_grew = false;
  std::vector<std::string> run_families, reduced_families;
  for (const Row& r : rows) {
    total_cells_fraig += r.cells_fraig;
    total_cells_rewrite += r.cells_rewrite;
    total_aig_fraig += r.aig_fraig;
    total_aig_rewrite += r.aig_rewrite;
    total_rewrites += r.stats.rewrites;
    total_added += r.stats.cells_added;
    total_shared += r.stats.cells_shared;
    total_seconds += r.rewrite_seconds;
    cec_all = cec_all && r.cec_ok;
    det_all = det_all && r.deterministic;
    cells_grew = cells_grew || r.cells_rewrite > r.cells_fraig;
    if (std::find(run_families.begin(), run_families.end(), r.family) == run_families.end())
      run_families.push_back(r.family);
    if (r.reduced_aig &&
        std::find(reduced_families.begin(), reduced_families.end(), r.family) ==
            reduced_families.end())
      reduced_families.push_back(r.family);
  }

  if (json) {
    std::vector<std::string> row_json;
    row_json.reserve(rows.size());
    for (const Row& r : rows)
      row_json.push_back("    " + json_row(r));
    std::string circuits_array = "[\n";
    for (size_t i = 0; i < row_json.size(); ++i)
      circuits_array += row_json[i] + (i + 1 == row_json.size() ? "\n" : ",\n");
    circuits_array += "  ]";

    std::vector<std::string> families;
    families.reserve(reduced_families.size());
    for (const std::string& f : reduced_families)
      families.push_back("\"" + benchjson::json_escape(f) + "\"");

    benchjson::JsonObject total;
    total.put("cells_fraig", total_cells_fraig)
        .put("cells_rewrite", total_cells_rewrite)
        .put("aig_fraig", total_aig_fraig)
        .put("aig_rewrite", total_aig_rewrite)
        .put("rewrites", total_rewrites)
        .put("cells_added", total_added)
        .put("cells_shared", total_shared)
        .putf("rewrite_seconds", total_seconds)
        .put_raw("families_reduced", benchjson::json_array(families))
        .put("cec_all", cec_all)
        .put("deterministic_all", det_all);

    std::printf("{\n  \"bench\": \"rewrite\",\n  \"metric\": \"aig_area\",\n"
                "  \"hardware_threads\": %u,\n  \"circuits\": %s,\n  \"total\": %s,\n"
                "  \"resource\": %s,\n  \"obs\": %s\n}\n",
                std::thread::hardware_concurrency(), circuits_array.c_str(),
                total.str().c_str(), benchjson::resource_json(guard.report()).c_str(),
                benchjson::obs_json(profile).c_str());
  } else {
    std::printf("\nTotal: aig %zu -> %zu (%.2f%%), cells %zu -> %zu, %zu rewrites, "
                "%.4fs; families reduced: %zu/%zu\n",
                total_aig_fraig, total_aig_rewrite,
                total_aig_fraig ? 100.0 * (double(total_aig_fraig) - double(total_aig_rewrite)) /
                                      double(total_aig_fraig)
                                : 0.0,
                total_cells_fraig, total_cells_rewrite, total_rewrites, total_seconds,
                reduced_families.size(), run_families.size());
  }

  if (!cec_all) {
    std::fprintf(stderr, "FAIL: a rewritten netlist is not equivalent to its source\n");
    return 1;
  }
  if (!det_all) {
    std::fprintf(stderr, "FAIL: rewrite diverged across thread counts\n");
    return 1;
  }
  if (cells_grew) {
    std::fprintf(stderr, "FAIL: a rewrite grew the word-level cell count\n");
    return 1;
  }
  // Family gates are suite-level acceptance criteria; a --filter subset is an
  // inspection run where "this circuit didn't reduce" is a valid answer.
  if (filter.empty()) {
    if (smoke && reduced_families.empty()) {
      std::fprintf(stderr, "FAIL: no benchmark family reduced AIG area below fraig alone\n");
      return 1;
    }
    if (!smoke && reduced_families.size() != run_families.size()) {
      std::fprintf(stderr, "FAIL: only %zu of %zu families reduced AIG area below fraig\n",
                   reduced_families.size(), run_families.size());
      return 1;
    }
  }
  return 0;
}
