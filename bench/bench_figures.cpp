// Reproduces the paper's illustrative figures as concrete measurements:
// each figure/listing circuit is built exactly as drawn, pushed through the
// baseline and through smaRTLy, and the resulting structures are reported.
//
//   Fig. 1   Y = S ? (S ? A : B) : C          -> Y = S ? A : C   (baseline too)
//   Fig. 2   Y = S ? (A ? S : B) : C          -> Y = S ? (A ? 1 : B) : C
//   Fig. 3   Y = S ? ((S|R) ? A : B) : C      -> Y = S ? A : C   (smaRTLy only)
//   Fig. 5-7 Listing 1 case chain             -> 3-mux tree, eq cells removed
//   Listing 2 casez priority                  -> 3-mux tree (good assignment)
#include "aig/aigmap.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/pipeline.hpp"
#include "rtlil/module.hpp"
#include "verilog/elaborate.hpp"

#include <cstdio>
#include <string>

using namespace smartly;

namespace {

struct Measured {
  size_t area_yosys = 0;
  size_t area_smartly = 0;
  size_t mux_yosys = 0;
  size_t mux_smartly = 0;
  size_t eq_smartly = 0;
  bool equivalent = false;
};

Measured measure(const std::string& src) {
  Measured m;
  {
    auto d = verilog::read_verilog(src);
    opt::yosys_flow(*d->top());
    m.area_yosys = aig::aig_area(*d->top());
    m.mux_yosys = d->top()->count_cells(rtlil::CellType::Mux);
  }
  {
    auto d = verilog::read_verilog(src);
    auto golden = rtlil::clone_design(*d);
    core::smartly_flow(*d->top());
    m.area_smartly = aig::aig_area(*d->top());
    m.mux_smartly = d->top()->count_cells(rtlil::CellType::Mux);
    m.eq_smartly = d->top()->count_cells(rtlil::CellType::Eq);
    m.equivalent = cec::check_equivalence(*golden->top(), *d->top()).equivalent;
  }
  return m;
}

void report(const char* tag, const char* expectation, const Measured& m) {
  std::printf("%-10s yosys: area %4zu / %2zu mux | smartly: area %4zu / %2zu mux, %zu eq"
              " | CEC %s\n           expected: %s\n",
              tag, m.area_yosys, m.mux_yosys, m.area_smartly, m.mux_smartly, m.eq_smartly,
              m.equivalent ? "PASS" : "FAIL", expectation);
}

} // namespace

int main() {
  std::printf("Figure-by-figure reproduction (8-bit data ports)\n\n");

  report("Fig. 1", "both flows collapse the inner mux (identical controls)", measure(R"(
    module f1(s, a, b, c, y);
      input s; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? (s ? a : b) : c;
    endmodule
  )"));

  report("Fig. 2", "both flows substitute the data-port use of S with 1", measure(R"(
    module f2(s, b, c, y);
      input s; input [7:0] b, c; output [7:0] y;
      wire [7:0] inner;
      input [7:0] a;
      assign inner = a[0] ? {7'b0, s} : b;
      assign y = s ? inner : c;
    endmodule
  )"));

  report("Fig. 3", "only smaRTLy sees S=1 forces S|R=1 (area drops vs yosys)",
         measure(R"(
    module f3(s, r, a, b, c, y);
      input s, r; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? ((s | r) ? a : b) : c;
    endmodule
  )"));

  report("Listing1", "smaRTLy rebuilds to 3 muxes and removes all 3 eq cells",
         measure(R"(
    module l1(s, p0, p1, p2, p3, y);
      input [1:0] s; input [7:0] p0, p1, p2, p3; output reg [7:0] y;
      always @(*) case (s)
        2'b00: y = p0;
        2'b01: y = p1;
        2'b10: y = p2;
        default: y = p3;
      endcase
    endmodule
  )"));

  report("Listing2", "casez priority tree rebuilds to 3 muxes (good assignment)",
         measure(R"(
    module l2(s, p0, p1, p2, p3, y);
      input [2:0] s; input [7:0] p0, p1, p2, p3; output reg [7:0] y;
      always @(*) casez (s)
        3'b1zz: y = p0;
        3'b01z: y = p1;
        3'b001: y = p2;
        default: y = p3;
      endcase
    endmodule
  )"));

  return 0;
}
