// Reproduces the industrial benchmark experiment (paper §IV.B).
//
// The paper's industrial suite is confidential; the stand-in generator
// (benchgen/industrial.*) produces selection-dominated designs matching what
// the paper discloses: a strong size skew (37.5% of test points "large"),
// a much higher MUX/PMUX proportion than the public suite, and baseline
// Yosys achieving almost no reduction. The reproduced claim is the *shape*:
// smaRTLy removes dramatically more area than the baseline here — the paper
// reports 47.2% more AIG area removed than Yosys.
#include "aig/aigmap.hpp"
#include "benchgen/industrial.hpp"
#include "core/smartly_pass.hpp"
#include "opt/pipeline.hpp"
#include "verilog/elaborate.hpp"

#include <cstdio>

using namespace smartly;

int main() {
  std::printf("Industrial benchmark (synthetic stand-in, paper §IV.B)\n");
  std::printf("%-12s %10s %10s %10s %11s\n", "TestPoint", "Original", "Yosys", "smaRTLy",
              "ExtraRemoved");

  size_t sum_orig = 0, sum_yosys = 0, sum_smartly = 0;
  const auto suite = benchgen::industrial_suite();
  for (size_t i = 0; i < suite.size(); ++i) {
    size_t orig = 0, yosys = 0, smart = 0;
    {
      auto d = verilog::read_verilog(suite[i].verilog);
      opt::original_flow(*d->top());
      orig = aig::aig_area(*d->top());
    }
    {
      auto d = verilog::read_verilog(suite[i].verilog);
      opt::yosys_flow(*d->top());
      yosys = aig::aig_area(*d->top());
    }
    {
      auto d = verilog::read_verilog(suite[i].verilog);
      core::smartly_flow(*d->top());
      smart = aig::aig_area(*d->top());
    }
    const double extra =
        yosys == 0 ? 0.0 : 100.0 * (double(yosys) - double(smart)) / double(yosys);
    std::printf("%-12s %10zu %10zu %10zu %10.2f%%\n", suite[i].name.c_str(), orig, yosys,
                smart, extra);
    sum_orig += orig;
    sum_yosys += yosys;
    sum_smartly += smart;
  }

  const double yosys_removed = double(sum_orig) - double(sum_yosys);
  const double smartly_removed = double(sum_orig) - double(sum_smartly);
  const double extra_vs_yosys =
      sum_yosys == 0 ? 0.0
                     : 100.0 * (double(sum_yosys) - double(sum_smartly)) / double(sum_yosys);
  std::printf("\nSuite totals: original=%zu yosys=%zu smartly=%zu\n", sum_orig, sum_yosys,
              sum_smartly);
  std::printf("Yosys removed %.1f%% of the original area; smaRTLy removed %.1f%%.\n",
              100.0 * yosys_removed / double(sum_orig),
              100.0 * smartly_removed / double(sum_orig));
  std::printf("smaRTLy removes %.1f%% more AIG area than Yosys "
              "(paper: 47.2%% on the confidential suite).\n",
              extra_vs_yosys);
  return 0;
}
