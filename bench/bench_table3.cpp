// Reproduces Table III of the paper: per-circuit reduction (vs the Yosys
// baseline) achieved by each smaRTLy engine in isolation — SAT-based
// redundancy elimination ("SAT") and muxtree restructuring ("Rebuild") —
// and by both together ("Full").
//
// Paper observations this harness must reproduce in shape:
//   * top_cache_axi is Rebuild-dominated (24.91% vs SAT 0.01%),
//   * wb_conmax is SAT-dominated (19.05% vs Rebuild 4.65%),
//   * Full >= max(SAT, Rebuild) and usually >= their individual sum is not
//     required, but Full must combine productively ("the two optimizations
//     work together").
#include "aig/aigmap.hpp"
#include "benchgen/public_bench.hpp"
#include "core/smartly_pass.hpp"
#include "opt/pipeline.hpp"
#include "verilog/elaborate.hpp"

#include <cstdio>
#include <string>

using namespace smartly;

namespace {

size_t area_with(const std::string& src, bool sat, bool rebuild) {
  auto design = verilog::read_verilog(src);
  rtlil::Module& top = *design->top();
  if (!sat && !rebuild) {
    opt::yosys_flow(top);
  } else {
    core::SmartlyOptions opt;
    opt.enable_sat = sat;
    opt.enable_rebuild = rebuild;
    core::smartly_flow(top, opt);
  }
  return aig::aig_area(top);
}

double pct(size_t base, size_t v) {
  return base == 0 ? 0.0 : 100.0 * (double(base) - double(v)) / double(base);
}

} // namespace

int main() {
  std::printf("Table III: reduction vs Yosys by individual engine and combined\n");
  std::printf("%-16s %9s %9s %9s\n", "Case", "SAT", "Rebuild", "Full");

  double s_sat = 0, s_rebuild = 0, s_full = 0;
  int n = 0;
  for (const benchgen::BenchCircuit& c : benchgen::public_suite()) {
    const size_t yosys = area_with(c.verilog, false, false);
    const size_t sat = area_with(c.verilog, true, false);
    const size_t rebuild = area_with(c.verilog, false, true);
    const size_t full = area_with(c.verilog, true, true);
    std::printf("%-16s %8.2f%% %8.2f%% %8.2f%%\n", c.name.c_str(), pct(yosys, sat),
                pct(yosys, rebuild), pct(yosys, full));
    s_sat += pct(yosys, sat);
    s_rebuild += pct(yosys, rebuild);
    s_full += pct(yosys, full);
    ++n;
  }
  std::printf("%-16s %8.2f%% %8.2f%% %8.2f%%\n", "Average", s_sat / n, s_rebuild / n,
              s_full / n);
  std::printf("\nPaper averages: SAT 3.57%%, Rebuild 4.39%%, Full 8.95%%.\n");
  return 0;
}
